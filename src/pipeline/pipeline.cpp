#include "pipeline/pipeline.hpp"

#ifdef __linux__
#include <sched.h>
#endif

#include <algorithm>
#include <thread>
#include <array>
#include <chrono>
#include <deque>
#include <filesystem>
#include <map>
#include <queue>
#include <tuple>
#include <utility>

#include "dns/message.hpp"
#include "flow/table.hpp"
#include "obs/flight.hpp"
#include "packet/decode.hpp"
#include "pcap/pcapng.hpp"
#include "pipeline/spsc_ring.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace dnh::pipeline {

namespace {

// Ring batch sizes: how many frames move per acquire/release pair on the
// produce (dispatcher staging) and consume (worker drain) sides. Small
// enough that a batch adds negligible latency at line rate, large enough
// to amortize the cross-core cache-line bounce.
constexpr std::size_t kDispatchBatch = 8;
constexpr std::size_t kConsumeBatch = 8;

// Fibonacci-based avalanche (splitmix64 finalizer): adjacent client
// addresses — the common case in access networks, where one /24 holds the
// whole customer base — must not land on the same shard.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Producer-side wait ladder: burn a few iterations (the consumer is
// usually a cache miss away), then yield, then sleep so a stalled peer on
// an oversubscribed machine does not starve it of the CPU it needs to
// make the very progress we are waiting for.
void backoff(unsigned& spins) {
  ++spins;
  if (spins < 16) return;
  if (spins < 64) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

// Best-effort shard pinning (PipelineConfig::pin_shards): affine the
// calling worker to one CPU so its flat hash tables and Clist stay warm
// in a single core's cache. CPU 0 is left to the dispatcher/merge/OS;
// shard i takes (i+1) mod hw_threads. Every failure mode — non-Linux,
// single-core box, cpuset-restricted container — degrades to a silent
// no-op: pinning is a locality hint and must never affect correctness.
void pin_to_cpu(std::size_t shard) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>((shard + 1) % hw), &set);
  (void)sched_setaffinity(0, sizeof(set), &set);
#else
  (void)shard;
#endif
}

void accumulate(core::DegradationStats& into,
                const core::DegradationStats& from) {
  into.frames_truncated += from.frames_truncated;
  into.bad_ip_headers += from.bad_ip_headers;
  into.bad_l4_headers += from.bad_l4_headers;
  into.unsupported_frames += from.unsupported_frames;
  into.timestamp_regressions += from.timestamp_regressions;
  into.dns_truncated += from.dns_truncated;
  into.dns_pointer_loops += from.dns_pointer_loops;
  into.dns_pointer_out_of_range += from.dns_pointer_out_of_range;
  into.dns_bad_names += from.dns_bad_names;
  into.dns_count_lies += from.dns_count_lies;
  into.tcp_dns_overflows += from.tcp_dns_overflows;
  into.tcp_dns_buffer_evictions += from.tcp_dns_buffer_evictions;
  into.dns_log_evictions += from.dns_log_evictions;
  into.capture_resyncs += from.capture_resyncs;
  into.capture_bytes_skipped += from.capture_bytes_skipped;
  into.capture_truncated_tails += from.capture_truncated_tails;
  into.pipeline_frames_dropped += from.pipeline_frames_dropped;
}

void accumulate(core::SnifferStats& into, const core::SnifferStats& from) {
  into.frames += from.frames;
  into.decode_failures += from.decode_failures;
  into.dns_responses += from.dns_responses;
  into.dns_parse_failures += from.dns_parse_failures;
  into.dns_queries += from.dns_queries;
  into.dns_tcp_messages += from.dns_tcp_messages;
  into.flows_exported += from.flows_exported;
  into.flows_tagged_at_start += from.flows_tagged_at_start;
  into.flows_tagged_at_export += from.flows_tagged_at_export;
  into.export_records += from.export_records;
  accumulate(into.degradation, from.degradation);
}

util::Duration steady_elapsed(std::chrono::steady_clock::time_point from,
                              std::chrono::steady_clock::time_point to) {
  return util::Duration::micros(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

// Pipeline-stage instrumentation (docs/observability.md). Counters are
// process-wide sums over every ShardedAnalyzer instance; per-shard depth
// gauges live on the instance because they carry {shard=N} labels.
struct PipelineMetrics {
  obs::Registry& r = obs::Registry::global();
  obs::Counter frames_dispatched =
      r.counter("dnh_pipeline_frames_dispatched_total");
  obs::Counter records_dispatched =
      r.counter("dnh_pipeline_records_dispatched_total");
  obs::Counter frames_dropped = r.counter("dnh_pipeline_frames_dropped_total");
  obs::Counter blocked_pushes = r.counter("dnh_pipeline_blocked_pushes_total");
  obs::Counter windows_merged = r.counter("dnh_pipeline_windows_merged_total");
  obs::Counter spill_records = r.counter("dnh_spill_records_total");
  obs::Counter stalls = r.counter("dnh_pipeline_stalls_total");
  obs::Histogram dispatch_ns = r.histogram("dnh_stage_dispatch_ns");
  obs::Histogram sniff_ns = r.histogram("dnh_stage_shard_sniff_ns");
  obs::Histogram merge_ns = r.histogram("dnh_stage_merge_ns");
  obs::Histogram depth_samples =
      r.histogram("dnh_shard_queue_depth_samples");
};

PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics;
  return metrics;
}

std::string shard_label(std::string_view base, std::size_t shard) {
  return std::string{base} + "{shard=" + std::to_string(shard) + "}";
}

}  // namespace

bool canonical_less(const core::TaggedFlow& a, const core::TaggedFlow& b) {
  return std::tie(a.first_packet, a.key, a.last_packet, a.packets_c2s,
                  a.packets_s2c, a.bytes_c2s, a.bytes_s2c, a.protocol,
                  a.fqdn, a.dns_response_time, a.tagged_at_start,
                  a.dpi_label, a.cert_cn, a.cert_san, a.has_certificate) <
         std::tie(b.first_packet, b.key, b.last_packet, b.packets_c2s,
                  b.packets_s2c, b.bytes_c2s, b.bytes_s2c, b.protocol,
                  b.fqdn, b.dns_response_time, b.tagged_at_start,
                  b.dpi_label, b.cert_cn, b.cert_san, b.has_certificate);
}

bool canonical_less(const core::DnsEvent& a, const core::DnsEvent& b) {
  return std::tie(a.time, a.client, a.fqdn, a.servers) <
         std::tie(b.time, b.client, b.fqdn, b.servers);
}

void canonicalize(core::FlowDatabase& db) {
  std::vector<core::TaggedFlow> flows = db.take_flows();
  std::sort(flows.begin(), flows.end(),
            [](const auto& a, const auto& b) { return canonical_less(a, b); });
  for (auto& flow : flows) db.add(std::move(flow));
}

void canonicalize(std::vector<core::DnsEvent>& log) {
  std::sort(log.begin(), log.end(),
            [](const auto& a, const auto& b) { return canonical_less(a, b); });
}

// One message on a shard's frame ring. Control items (rotate/stop) ride
// the same channel as frames, so a shard processes every frame dispatched
// before a window boundary before it rotates — ordering for free.
struct ShardedAnalyzer::Item {
  enum class Kind : std::uint8_t { kFrame, kRecord, kRotate, kStop };
  Kind kind = Kind::kFrame;
  util::Timestamp ts;     ///< frame timestamp (kFrame) / arrival (kRecord)
  util::Timestamp start;  ///< window bounds (kRotate/kStop)
  util::Timestamp end;
  flowexport::OrientedRecord record;  ///< kRecord payload
  bool deliver = true;    ///< kStop: hand the final window to the sink?
  /// kStop: may the final window be spilled/journaled? False on a
  /// drain-interrupted run — the flush window covers only the frames
  /// ingested before the drain, so journaling it as sealed would make a
  /// later --resume serve a truncated window where an uninterrupted run
  /// computes a full one.
  bool durable = true;
  net::Bytes frame;       ///< recycled across ring laps (vector::assign)
};

/// One shard's contribution to one merged window, canonically pre-sorted
/// by the worker (the k-way merge's input invariant).
struct ShardedAnalyzer::ShardWindow {
  std::uint64_t seq = 0;      ///< window sequence number (global order)
  std::size_t shard = 0;
  bool final_window = false;  ///< emitted by kStop: merge loop exits after
  bool deliver = true;
  bool spilled = false;       ///< durable on disk; extent below is valid
  SpillExtent extent;         ///< where the record landed in the segment
  core::AnalysisWindow window;
};

struct ShardedAnalyzer::MergeInbox {
  util::Mutex mutex;
  util::CondVar cv;        ///< data available (merge thread waits)
  util::CondVar cv_space;  ///< capacity available (sealing workers wait)
  /// Window messages the merge thread may hold at once; workers sealing
  /// further ahead block in cv_space. This cap — not the capture length —
  /// bounds merge-stage memory (the streaming guarantee).
  std::size_t capacity = 0;
  std::size_t peak DNH_GUARDED_BY(mutex) = 0;
  /// One entry per (shard, window) message, drained by the merge thread.
  // dnh-lint: allow(hot-path-bound) per-window (not per-packet), and
  // explicitly capped at `capacity` entries by the cv_space wait.
  std::deque<ShardWindow> queue DNH_GUARDED_BY(mutex);
};

struct ShardedAnalyzer::Worker {
  Worker(const core::SnifferConfig& config, std::size_t queue_capacity)
      : queue(queue_capacity), sniffer(config) {}

  /// Dispatcher-side staging buffer: frames accumulate here and enter the
  /// ring kDispatchBatch at a time via try_produce_n, so the
  /// acquire/release pair (and its cross-core cache-line bounce) is paid
  /// per batch instead of per frame. Item buffers are recycled by
  /// swapping with ring slots. Dispatcher-thread-owned.
  struct Stage {
    std::array<Item, kDispatchBatch> items;
    std::size_t count = 0;
    /// Set while the ring cannot absorb a whole flush. Under kDrop the
    /// dispatcher then bypasses batching and offers each frame at
    /// arrival, so shed-vs-accepted accounting reflects the ring's state
    /// WHEN the frame arrived, not when a batch happened to fill —
    /// exactly the semantics of the pre-batching per-frame push.
    bool congested = false;
  };
  Stage stage;

  SpscRing<Item> queue;
  core::Sniffer sniffer;             ///< worker-thread-owned after start
  std::uint64_t frames_processed = 0;  ///< worker-owned; read after join
  // Spill accounting, worker-owned; folded into PipelineStats after join.
  std::uint64_t windows_spilled = 0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_failures = 0;
  obs::SampleGate sniff_gate{64};    ///< worker-thread-owned span sampler
  std::thread thread;
};

ShardedAnalyzer::ShardedAnalyzer(PipelineConfig config, WindowSink sink)
    : config_{std::move(config)}, sink_{std::move(sink)} {
  if (config_.shards == 0) config_.shards = 1;
  dispatch_.resize(config_.shards);
  // Record orientation splits pairs exactly where the flow table splits
  // flows: same idle timeout, same sweep cadence.
  flowexport::OrienterConfig orienter_config;
  orienter_config.idle_timeout = config_.sniffer.table.idle_timeout;
  orienter_config.sweep_interval_records =
      config_.sniffer.table.sweep_interval_packets;
  orienter_ = flowexport::RecordOrienter{orienter_config};
  inbox_ = std::make_unique<MergeInbox>();
  inbox_->capacity =
      config_.merge_inbox_capacity != 0
          ? config_.merge_inbox_capacity
          : std::max<std::size_t>(2 * config_.shards, 4);

  // Durability setup, before any thread exists. A resume replays the
  // manifest first; an unusable directory (no valid header, or a window
  // length that disagrees with this run's) degrades to a fresh spill —
  // recorded in the recovery stats — rather than failing the run.
  const bool spilling = !config_.spill_dir.empty();
  if (spilling) {
    std::error_code ec;
    std::filesystem::create_directories(config_.spill_dir, ec);
    bool truncate = !config_.resume;
    if (config_.resume) {
      plan_ = scan_spill_dir(config_.spill_dir);
      if (plan_.usable() &&
          plan_.window_us !=
              static_cast<std::uint64_t>(config_.window.total_micros())) {
        plan_.error = "spill window length mismatch: manifest has " +
                      std::to_string(plan_.window_us) + "us, run has " +
                      std::to_string(config_.window.total_micros()) + "us";
        plan_.parts.clear();
        plan_.complete_prefix = 0;
      }
      if (plan_.usable()) {
        resume_prefix_ = plan_.complete_prefix;
      } else {
        truncate = true;  // start over; the directory gave us nothing
      }
    }
    recovery_stats_ = plan_.stats;
    spill_writers_.reserve(config_.shards);
    for (std::size_t i = 0; i < config_.shards; ++i) {
      spill_writers_.push_back(std::make_unique<SpillWriter>(
          config_.spill_dir, static_cast<std::uint32_t>(i), truncate));
      if (!spill_writers_.back()->ok() && error_.empty())
        error_ = "cannot open spill segment in " + config_.spill_dir;
    }
    manifest_ = std::make_unique<ManifestJournal>(
        config_.spill_dir, static_cast<std::uint32_t>(config_.shards),
        static_cast<std::uint64_t>(config_.window.total_micros()), truncate);
    if (!manifest_->ok() && error_.empty())
      error_ = "cannot open manifest journal in " + config_.spill_dir;
  }

  workers_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    core::SnifferConfig shard_config = config_.sniffer;
    shard_config.metrics_shard = i;  // labels the shard's state gauges
    workers_.push_back(
        std::make_unique<Worker>(shard_config, config_.queue_capacity));
  }
  obs::Registry& registry = obs::Registry::global();
  routes_gauge_ = registry.gauge("dnh_pipeline_routes");
  inbox_depth_gauge_ = registry.gauge("dnh_merge_inbox_depth");
  spill_bytes_gauge_ = registry.gauge("dnh_spill_bytes");
  inbox_depth_gauge_.set(0);
  depth_gauges_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    depth_gauges_.push_back(
        registry.gauge(shard_label("dnh_shard_queue_depth", i)));
  sampled_peaks_ =
      std::make_unique<std::atomic<std::size_t>[]>(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    sampled_peaks_[i].store(0, std::memory_order_relaxed);
  // Queue depth is sampled on the exporter's snapshot cadence, not per
  // push: the rings' head/tail cursors are atomics, so the read is safe
  // from the snapshot thread, and interval sampling is what makes the
  // peak/percentile depth statistics meaningful (a per-push high-water
  // mark saturates on any momentary burst).
  depth_sampler_ = registry.add_sampler([this] {
    PipelineMetrics& m = pipeline_metrics();
    for (std::size_t i = 0; i < config_.shards; ++i) {
      const std::size_t depth = workers_[i]->queue.size();
      depth_gauges_[i].set(static_cast<std::int64_t>(depth));
      m.depth_samples.observe(depth);
      auto& peak = sampled_peaks_[i];
      if (depth > peak.load(std::memory_order_relaxed))
        peak.store(depth, std::memory_order_relaxed);
    }
  });
  // Heartbeats registered before any watched thread exists: the board is
  // structurally immutable once the watchdog and workers start.
  dispatch_hb_ = heartbeats_.add_stage("dispatch");
  // The dispatcher runs on the constructing (caller) thread; claim its
  // flight-recorder ring here so every later dispatch event is labeled.
  obs::FlightRecorder::global().set_thread_label("dispatch");
  obs::trace_event(obs::TraceStage::kDispatch, obs::TraceKind::kThreadStart,
                   obs::kNoSeq, obs::kNoShard, config_.shards);
  worker_hb_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    worker_hb_.push_back(
        heartbeats_.add_stage("shard-" + std::to_string(i)));
  merge_hb_ = heartbeats_.add_stage("merge");

  // Threads start only after every Worker exists: a worker never touches
  // another shard's state, but the merge loop walks workers_ indirectly
  // through inbox messages carrying shard indices.
  for (std::size_t i = 0; i < config_.shards; ++i)
    workers_[i]->thread = std::thread{[this, i] { worker_loop(i); }};
  merge_thread_ = std::thread{[this] { merge_loop(); }};

  if (config_.watchdog_timeout.total_micros() > 0) {
    WatchdogConfig watchdog;
    watchdog.timeout = config_.watchdog_timeout;
    // Group quiescence needs a pending-work signal: frames sitting in a
    // ring (atomic cursors, safe cross-thread) or windows sitting in the
    // inbox (its own mutex). Quiet with neither is idle, not a stall.
    watchdog.pending = [this](std::string& desc) {
      for (std::size_t i = 0; i < config_.shards; ++i) {
        if (workers_[i]->queue.size() > 0) {
          desc = "frames queued in shard " + std::to_string(i) + "'s ring";
          return true;
        }
      }
      util::MutexLock lock{inbox_->mutex};
      if (!inbox_->queue.empty()) {
        desc = "windows waiting in the merge inbox";
        return true;
      }
      return false;
    };
    watchdog.on_stall = [this](const StallDiagnostic& diag) {
      pipeline_metrics().stalls.inc();
      if (config_.on_stall) config_.on_stall(diag);
    };
    watchdog_ = std::make_unique<Watchdog>(heartbeats_, std::move(watchdog));
  }
}

ShardedAnalyzer::~ShardedAnalyzer() { finish(); }

namespace {

// The client side is the dispatch key. For DNS traffic the client is
// whoever is NOT on port 53 (responses must land on the same shard as
// the flows they will label); for everything else the flow-orientation
// rules decide.
net::Ipv4Address dispatch_client(const packet::DecodedPacket& pkt) {
  if (pkt.is_udp() && pkt.udp().src_port == dns::kDnsPort) return pkt.dst_v4();
  if (pkt.is_udp() && pkt.udp().dst_port == dns::kDnsPort) return pkt.src_v4();
  if (pkt.is_tcp() && pkt.tcp().src_port == dns::kDnsPort) return pkt.dst_v4();
  if (pkt.is_tcp() && pkt.tcp().dst_port == dns::kDnsPort) return pkt.src_v4();
  return flow::orient(pkt).key.client_ip;
}

std::size_t shard_for_packet(const packet::DecodedPacket& pkt,
                             std::size_t shards) {
  return static_cast<std::size_t>(
      splitmix64(dispatch_client(pkt).value()) %
      static_cast<std::uint64_t>(shards));
}

// Direction-free connection identity: both directions of a 5-tuple map to
// the same key, with the lexicographically smaller (ip, port) endpoint in
// the client slots. Purely an index into the routing table — it says
// nothing about which side is the real client.
flow::FlowKey route_key(const packet::DecodedPacket& pkt) {
  flow::FlowKey key;
  key.transport =
      pkt.is_tcp() ? flow::Transport::kTcp : flow::Transport::kUdp;
  const net::Ipv4Address src = pkt.src_v4();
  const net::Ipv4Address dst = pkt.dst_v4();
  const std::uint16_t sport = pkt.src_port();
  const std::uint16_t dport = pkt.dst_port();
  if (std::tie(src, sport) <= std::tie(dst, dport)) {
    key.client_ip = src;
    key.client_port = sport;
    key.server_ip = dst;
    key.server_port = dport;
  } else {
    key.client_ip = dst;
    key.client_port = dport;
    key.server_ip = src;
    key.server_port = sport;
  }
  return key;
}

}  // namespace

std::size_t ShardedAnalyzer::shard_for(net::BytesView frame,
                                       std::size_t shards) {
  if (shards <= 1) return 0;
  packet::DecodeFailure failure = packet::DecodeFailure::kNone;
  const auto pkt = packet::decode_frame(frame, util::Timestamp{}, failure);
  if (!pkt || !pkt->is_ipv4()) return 0;
  return shard_for_packet(*pkt, shards);
}

std::size_t ShardedAnalyzer::route_frame(net::BytesView frame,
                                         util::Timestamp ts) {
  if (config_.shards <= 1) return 0;
  packet::DecodeFailure failure = packet::DecodeFailure::kNone;
  const auto pkt = packet::decode_frame(frame, util::Timestamp{}, failure);
  if (!pkt || !pkt->is_ipv4()) return 0;
  if (!pkt->is_tcp() && !pkt->is_udp()) return 0;

  // Connection affinity: the first packet of a 5-tuple picks the shard by
  // the stateless heuristic; every later packet — in either direction —
  // follows it. An entry whose connection has been idle past the flow
  // table's timeout is re-homed from the arriving packet, the exact
  // condition under which the table starts a new flow, so a resumed
  // 5-tuple re-orients identically in both worlds.
  const util::Duration idle = config_.sniffer.table.idle_timeout;
  if (++routed_packets_ % config_.sniffer.table.sweep_interval_packets ==
      0) {
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (ts - it->second.last > idle)
        it = routes_.erase(it);
      else
        ++it;
    }
  }
  const flow::FlowKey key = route_key(*pkt);
  const auto it = routes_.find(key);
  if (it != routes_.end() && !(ts - it->second.last > idle)) {
    if (ts > it->second.last) it->second.last = ts;
    return it->second.shard;
  }
  const std::size_t shard = shard_for_packet(*pkt, config_.shards);
  routes_[key] = Route{shard, ts};
  return shard;
}

void ShardedAnalyzer::on_frame(net::BytesView frame, util::Timestamp ts) {
  if (finished_ || draining_) return;
  // Drain polling is amortized: the check is an indirect call (usually a
  // sig_atomic_t read), so once per 64 frames keeps it off the hot path
  // while still reacting to SIGINT within a microsecond-scale burst.
  if (config_.drain_check && (frames_dispatched_ & 63) == 0 &&
      config_.drain_check()) {
    draining_ = true;
    obs::trace_event(obs::TraceStage::kDispatch,
                     obs::TraceKind::kDrainRequested, rotations_, obs::kNoShard,
                     frames_dispatched_);
    return;
  }
  if (!started_) {
    started_ = true;
    first_ts_ = ts;
    last_ts_ = ts;
    if (config_.window.total_micros() > 0) {
      // Align to the window grid exactly like core::LiveAnalyzer.
      const std::int64_t width = config_.window.total_micros();
      window_start_ = util::Timestamp::from_micros(
          ts.micros_since_epoch() / width * width);
    }
  }
  if (ts > last_ts_) last_ts_ = ts;
  if (config_.window.total_micros() > 0) {
    while (ts >= window_start_ + config_.window)
      broadcast_rotation(window_start_, window_start_ + config_.window);
  }
  ++frames_dispatched_;
  pipeline_metrics().frames_dispatched.inc();
  if ((frames_dispatched_ & 4095) == 0)
    routes_gauge_.set(static_cast<std::int64_t>(routes_.size()));
  dispatch_frame(frame, ts);
}

void ShardedAnalyzer::on_export_record(const flowexport::ExportRecord& record,
                                       util::Timestamp arrival) {
  if (finished_ || draining_) return;
  // A reordered export stream can deliver an older datagram after a newer
  // one. Only the dispatch clock is clamped (it must never step back —
  // window boundaries are monotone); the record's own timestamps pass
  // through untouched, and they alone decide flow boundaries and labels.
  if (started_ && arrival < last_ts_) arrival = last_ts_;
  if (!started_) {
    started_ = true;
    first_ts_ = arrival;
    last_ts_ = arrival;
    if (config_.window.total_micros() > 0) {
      const std::int64_t width = config_.window.total_micros();
      window_start_ = util::Timestamp::from_micros(
          arrival.micros_since_epoch() / width * width);
    }
  }
  if (arrival > last_ts_) last_ts_ = arrival;
  if (config_.window.total_micros() > 0) {
    while (arrival >= window_start_ + config_.window)
      broadcast_rotation(window_start_, window_start_ + config_.window);
  }
  ++records_dispatched_;
  pipeline_metrics().records_dispatched.inc();

  Item item;
  item.kind = Item::Kind::kRecord;
  item.ts = arrival;
  item.record = orienter_.orient(record);
  // Route by the oriented client: the shard whose resolver replica holds
  // this client's DNS history — the same reduction dispatch_client feeds
  // for DNS frames, so records and the responses that label them always
  // meet on one shard. Records are per-flow (not per-packet), so the
  // lossless control-item push is cheap enough.
  const std::size_t shard =
      config_.shards <= 1
          ? 0
          : static_cast<std::size_t>(
                splitmix64(item.record.key.client_ip.value()) %
                static_cast<std::uint64_t>(config_.shards));
  push_control(shard, std::move(item));
}

void ShardedAnalyzer::dispatch_frame(net::BytesView frame,
                                     util::Timestamp ts) {
  PipelineMetrics& m = pipeline_metrics();
  obs::SpanTimer span{m.dispatch_ns, dispatch_gate_};
  const std::size_t shard = route_frame(frame, ts);
  Worker::Stage& stage = workers_[shard]->stage;
  Item& staged = stage.items[stage.count++];
  staged.kind = Item::Kind::kFrame;
  staged.ts = ts;
  staged.frame.assign(frame.begin(), frame.end());  // recycled capacity
  if (stage.count == kDispatchBatch ||
      (stage.congested && config_.backpressure == BackpressurePolicy::kDrop))
    flush_stage(shard);
}

void ShardedAnalyzer::flush_stage(std::size_t shard) {
  Worker& worker = *workers_[shard];
  Worker::Stage& stage = worker.stage;
  if (stage.count == 0) return;
  PipelineMetrics& m = pipeline_metrics();
  DispatchCounters& counters = dispatch_[shard];

  std::size_t offset = 0;
  const auto produce = [&] {
    // dnh-lint: ring-producer (dispatcher thread owns every produce side)
    return worker.queue.try_produce_n(
        stage.count - offset, [&](Item& slot, std::size_t i) {
          Item& staged = stage.items[offset + i];
          slot.kind = staged.kind;
          slot.ts = staged.ts;
          // Swap keeps BOTH buffer pools warm: the ring slot's recycled
          // capacity returns to the stage for the next frame.
          std::swap(slot.frame, staged.frame);
        });
  };
  offset = produce();
  stage.congested = offset < stage.count;
  if (offset < stage.count) {
    if (config_.backpressure == BackpressurePolicy::kDrop) {
      const std::uint64_t shed = stage.count - offset;
      counters.dropped += shed;
      m.frames_dropped.add(shed);
    } else {
      ++counters.blocked;  // once per stalled flush, not per retry
      m.blocked_pushes.inc();
      obs::trace_event(obs::TraceStage::kDispatch,
                       obs::TraceKind::kBackpressureWait, rotations_,
                       static_cast<unsigned>(shard), stage.count - offset);
      unsigned spins = 0;
      while (offset < stage.count) {
        backoff(spins);
        offset += produce();
      }
    }
  }
  // Progress marker once per ~512 enqueued frames per shard: frequent
  // enough that a stall dump shows the dispatcher was alive moments
  // before, rare enough not to evict window-lifecycle events.
  if (((counters.enqueued ^ (counters.enqueued + offset)) >> 9) != 0)
    obs::trace_event(obs::TraceStage::kDispatch, obs::TraceKind::kFrameBatch,
                     rotations_, static_cast<unsigned>(shard),
                     counters.enqueued + offset);
  counters.enqueued += offset;
  stage.count = 0;
  heartbeats_.beat(dispatch_hb_);
  const std::size_t depth = worker.queue.size();
  if (depth > counters.high_water) counters.high_water = depth;
}

void ShardedAnalyzer::push_control(std::size_t shard, Item&& item) {
  // Staged frames precede the control item in its shard's ring: rotation
  // and stop ordering relies on the frame channel being FIFO end to end.
  flush_stage(shard);
  // Control messages are lossless under every backpressure policy:
  // dropping a rotation would desynchronize the merge sequence.
  Worker& worker = *workers_[shard];
  unsigned spins = 0;
  // dnh-lint: ring-producer (control items ride the dispatcher thread too)
  while (!worker.queue.try_push(std::move(item))) backoff(spins);
}

void ShardedAnalyzer::broadcast_rotation(util::Timestamp start,
                                         util::Timestamp end) {
  for (std::size_t i = 0; i < config_.shards; ++i) {
    Item item;
    item.kind = Item::Kind::kRotate;
    item.start = start;
    item.end = end;
    push_control(i, std::move(item));
  }
  // The WindowTraceId is the rotation's sequence number: every shard's
  // worker assigns exactly this seq when it seals its slice, so the
  // dispatched/sealed/spilled/ingested/emitted events all correlate.
  obs::trace_event(obs::TraceStage::kDispatch,
                   obs::TraceKind::kWindowDispatched, rotations_,
                   obs::kNoShard, config_.shards);
  window_start_ = end;
  ++rotations_;
}

bool ShardedAnalyzer::process_pcap(const std::string& path) {
  pcap::CaptureReadOptions options;
  options.resync = config_.sniffer.resync_capture;
  if (config_.drain_check) {
    // Abort the file read itself on drain: a multi-gigabyte capture must
    // not stand between SIGINT and the seal-spill-merge shutdown path.
    options.stop = [this] {
      if (!draining_ && config_.drain_check()) {
        draining_ = true;
        obs::trace_event(obs::TraceStage::kDispatch,
                         obs::TraceKind::kDrainRequested, rotations_,
                         obs::kNoShard, frames_dispatched_);
      }
      return draining_;
    };
  }
  pcap::CaptureReadReport report;
  const bool ok = pcap::read_any_capture(
      path,
      [this](const pcap::Frame& frame) {
        on_frame(frame.data, frame.timestamp);
      },
      options, report);
  // Container-level damage is observed by the dispatcher (it owns the
  // reader), not by any shard; folded into merged degradation at finish.
  capture_degradation_.capture_resyncs += report.corruption.resyncs;
  capture_degradation_.capture_bytes_skipped +=
      report.corruption.bytes_skipped;
  capture_degradation_.capture_truncated_tails +=
      report.corruption.truncated_tail;
  if (!report.error.empty()) error_ = std::move(report.error);
  return ok;
}

void ShardedAnalyzer::note_capture_corruption(
    const pcap::CorruptionStats& corruption) {
  capture_degradation_.capture_resyncs += corruption.resyncs;
  capture_degradation_.capture_bytes_skipped += corruption.bytes_skipped;
  capture_degradation_.capture_truncated_tails += corruption.truncated_tail;
}

// dnh-analyze: shard-local-ids
void ShardedAnalyzer::worker_loop(std::size_t index) {
  if (config_.pin_shards) pin_to_cpu(index);
  // Label + thread-start before the test hook: an injected stall that
  // parks this worker forever must still leave its shard visible in the
  // stall dump.
  obs::FlightRecorder::global().set_thread_label("shard-" +
                                                 std::to_string(index));
  obs::trace_event(obs::TraceStage::kShard, obs::TraceKind::kThreadStart,
                   obs::kNoSeq, static_cast<unsigned>(index));
  if (config_.worker_start_hook) config_.worker_start_hook(index);
  Worker& worker = *workers_[index];
  std::uint64_t seq = 0;
  bool running = true;
  unsigned spins = 0;
  const auto emit = [&](bool final_window, bool deliver, bool durable,
                        util::Timestamp start, util::Timestamp end) {
    ShardWindow msg;
    msg.seq = seq++;
    msg.shard = index;
    msg.final_window = final_window;
    msg.deliver = deliver;
    msg.window = core::AnalysisWindow{start, end,
                                      worker.sniffer.take_database(),
                                      worker.sniffer.take_dns_log()};
    if (deliver) {
      // Seal: canonical per-shard order, established here so (a) the sort
      // cost parallelizes across workers instead of serializing on the
      // merge thread and (b) the spilled record is already in its final
      // order — a recovered window replays without re-sorting.
      canonicalize(msg.window);
      obs::trace_event(obs::TraceStage::kShard, obs::TraceKind::kWindowSealed,
                       msg.seq, static_cast<unsigned>(index),
                       worker.frames_processed);
      // Spill before the inbox hand-off. Windows inside the resume
      // prefix are already durable from the crashed run and are skipped;
      // a failed append degrades (the window just is not durable) and is
      // tallied rather than fatal.
      if (durable && !spill_writers_.empty() && msg.seq >= resume_prefix_) {
        if (const auto extent =
                spill_writers_[index]->append(msg.seq, msg.window)) {
          msg.spilled = true;
          msg.extent = *extent;
          ++worker.windows_spilled;
          worker.spill_bytes += extent->length;
          spill_bytes_gauge_.add(static_cast<std::int64_t>(extent->length));
          pipeline_metrics().spill_records.inc();
        } else {
          ++worker.spill_failures;
        }
      }
    }
    {
      util::MutexLock lock{inbox_->mutex};
      // Bounded inbox: sealing ahead of the merge thread parks here, so
      // merge-stage memory is capped by `capacity` windows no matter how
      // long the capture runs. Deadlock-free: the merge thread always
      // drains whenever the queue is non-empty.
      while (inbox_->queue.size() >= inbox_->capacity)
        inbox_->cv_space.wait(lock);
      inbox_->queue.push_back(std::move(msg));
      if (inbox_->queue.size() > inbox_->peak)
        inbox_->peak = inbox_->queue.size();
      inbox_depth_gauge_.set(
          static_cast<std::int64_t>(inbox_->queue.size()));
    }
    inbox_->cv.notify_one();
  };
  while (running) {
    // Batch drain: one acquire/release pair covers up to kConsumeBatch
    // items. Safe even around control items — kStop is the last item its
    // ring will ever carry, so nothing can follow it within a batch.
    // dnh-lint: ring-consumer (this worker thread owns the consume side)
    const std::size_t got =
        worker.queue.try_consume_n(kConsumeBatch, [&](Item& item,
                                                      std::size_t) {
          switch (item.kind) {
            case Item::Kind::kFrame: {
              obs::SpanTimer span{pipeline_metrics().sniff_ns,
                                  worker.sniff_gate};
              worker.sniffer.on_frame(item.frame, item.ts);
              ++worker.frames_processed;
              break;
            }
            case Item::Kind::kRecord:
              worker.sniffer.on_export_record(item.record, item.ts);
              break;
            case Item::Kind::kRotate:
              // Open flows stay live in the flow table across rotations,
              // exactly like LiveAnalyzer: a flow lands in the window it
              // completes in.
              emit(false, true, true, item.start, item.end);
              break;
            case Item::Kind::kStop:
              worker.sniffer.finish();
              emit(true, item.deliver, item.durable, item.start, item.end);
              running = false;
              break;
          }
        });
    if (got > 0) {
      spins = 0;
      heartbeats_.beat(worker_hb_[index]);
    } else {
      backoff(spins);
    }
  }
}

void ShardedAnalyzer::merge_loop() {
  obs::FlightRecorder::global().set_thread_label("merge");
  obs::trace_event(obs::TraceStage::kMerge, obs::TraceKind::kThreadStart);
  // dnh-lint: allow(hot-path-bound) holds at most one in-flight window
  // set per shard; erased as soon as every shard reports the sequence.
  std::map<std::uint64_t, std::vector<ShardWindow>> pending;
  std::uint64_t next_seq = 0;
  bool done = false;
  while (!done) {
    ShardWindow msg;
    {
      util::MutexLock lock{inbox_->mutex};
      // Guarded-predicate loop (no wait lambda: every `queue` access
      // stays visibly under `mutex` for the thread-safety analysis).
      while (inbox_->queue.empty()) inbox_->cv.wait(lock);
      msg = std::move(inbox_->queue.front());
      inbox_->queue.pop_front();
      inbox_depth_gauge_.set(
          static_cast<std::int64_t>(inbox_->queue.size()));
    }
    inbox_->cv_space.notify_one();
    heartbeats_.beat(merge_hb_);
    obs::trace_event(obs::TraceStage::kMerge, obs::TraceKind::kMergeIngested,
                     msg.seq, static_cast<unsigned>(msg.shard),
                     msg.spilled ? msg.extent.length : 0);
    // Journal the seal as soon as the message arrives: the worker's
    // segment fsync happened before the inbox hand-off, so the ordering
    // invariant (record durable before the manifest references it)
    // holds, and durability does not wait for the slowest shard.
    if (msg.spilled && manifest_) {
      manifest_->append_seal(msg.seq, static_cast<std::uint32_t>(msg.shard),
                             spill_writers_[msg.shard]->segment(),
                             msg.extent, seal_seq_++);
      obs::trace_event(obs::TraceStage::kMerge,
                       obs::TraceKind::kWindowJournaled, msg.seq,
                       static_cast<unsigned>(msg.shard), msg.extent.length);
    }
    pending[msg.seq].push_back(std::move(msg));
    // Merge strictly in sequence order, only once every shard has
    // reported the sequence number — windows reach the sink in the same
    // order LiveAnalyzer would deliver them.
    while (true) {
      const auto it = pending.find(next_seq);
      if (it == pending.end() || it->second.size() < config_.shards) break;
      const bool final_window = it->second.front().final_window;
      const bool deliver = it->second.front().deliver;
      const auto t0 = std::chrono::steady_clock::now();
      core::AnalysisWindow merged = retire_window(next_seq, it->second);
      const auto t1 = std::chrono::steady_clock::now();
      const util::Duration elapsed = steady_elapsed(t0, t1);
      pending.erase(it);
      ++next_seq;
      if (deliver) {
        merge_total_ = merge_total_ + elapsed;
        if (elapsed > merge_max_) merge_max_ = elapsed;
        ++windows_merged_;
        // Merges are per-window (rare), so the span is unsampled.
        pipeline_metrics().merge_ns.observe(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
        pipeline_metrics().windows_merged.inc();
        if (sink_) sink_(std::move(merged));
        obs::trace_event(
            obs::TraceStage::kMerge, obs::TraceKind::kWindowEmitted,
            next_seq - 1, obs::kNoShard,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()));
      }
      if (final_window) {
        done = true;
        break;
      }
    }
  }
}

namespace {

/// K-way merges canonically pre-sorted windows into `out`. Inputs must
/// already carry event fqdn ids/views valid against out's table (the
/// callers remap via intern or absorb first). Equal keys under
/// canonical_less are value-identical rows, so pop order among ties
/// cannot change a single output byte — which is why a k-way merge of
/// per-shard-sorted runs reproduces the global canonical sort exactly.
// dnh-analyze: merge-boundary
void kway_merge_into(std::vector<core::AnalysisWindow>& parts,
                     core::AnalysisWindow& out) {
  std::vector<std::vector<core::TaggedFlow>> flows(parts.size());
  std::size_t event_total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    // The moved-out flows' fqdn views stay valid: each part's db retains
    // its DomainTable, and `parts` outlives the merge.
    flows[i] = parts[i].db.take_flows();
    event_total += parts[i].dns_log.size();
  }
  out.dns_log.reserve(event_total);

  // Index-heap pattern: the heap holds part indices, keyed by each
  // part's current head. An index is popped, its head consumed, and the
  // index re-pushed — the key only changes while the index is out.
  std::vector<std::size_t> pos(parts.size(), 0);
  const auto flow_greater = [&](std::size_t x, std::size_t y) {
    return canonical_less(flows[y][pos[y]], flows[x][pos[x]]);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(flow_greater)>
      flow_heap{flow_greater};
  for (std::size_t i = 0; i < parts.size(); ++i)
    if (!flows[i].empty()) flow_heap.push(i);
  while (!flow_heap.empty()) {
    const std::size_t i = flow_heap.top();
    flow_heap.pop();
    out.db.add(std::move(flows[i][pos[i]]));
    if (++pos[i] < flows[i].size()) flow_heap.push(i);
  }

  std::vector<std::size_t> event_pos(parts.size(), 0);
  const auto event_greater = [&](std::size_t x, std::size_t y) {
    return canonical_less(parts[y].dns_log[event_pos[y]],
                          parts[x].dns_log[event_pos[x]]);
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(event_greater)>
      event_heap{event_greater};
  for (std::size_t i = 0; i < parts.size(); ++i)
    if (!parts[i].dns_log.empty()) event_heap.push(i);
  while (!event_heap.empty()) {
    const std::size_t i = event_heap.top();
    event_heap.pop();
    out.dns_log.push_back(std::move(parts[i].dns_log[event_pos[i]]));
    if (++event_pos[i] < parts[i].dns_log.size()) event_heap.push(i);
  }
}

}  // namespace

// dnh-analyze: id-remap(per-event intern into the unified table below;
// flows are re-interned by out.db.add inside the k-way merge)
core::AnalysisWindow ShardedAnalyzer::merge_windows(
    std::vector<ShardWindow>& parts) {
  core::AnalysisWindow out;
  out.start = parts.front().window.start;
  out.end = parts.front().window.end;

  // Shard-local DomainIds are meaningless in the merged window: re-intern
  // every DNS event's label into the output database's table (flows are
  // re-interned by out.db.add inside the k-way merge). Per-event intern,
  // not absorb: the shard tables accumulate names across the whole run,
  // and a window must only pay for the names it actually references.
  core::DomainTable& unified = *out.db.domain_table();
  std::vector<core::AnalysisWindow> windows;
  windows.reserve(parts.size());
  for (auto& part : parts) {
    for (auto& event : part.window.dns_log) {
      event.fqdn_id = unified.intern(event.fqdn);
      event.fqdn = unified.view(event.fqdn_id);
    }
    windows.push_back(std::move(part.window));
  }
  kway_merge_into(windows, out);
  return out;
}

core::AnalysisWindow ShardedAnalyzer::merge_recovered(
    std::vector<core::AnalysisWindow>& parts) {
  core::AnalysisWindow out;
  out.start = parts.front().start;
  out.end = parts.front().end;

  // Windows loaded from spill each carry a private table holding exactly
  // the window's names, so absorb() — one bulk re-intern returning the
  // id remap — is the right tool here, where it was not above.
  core::DomainTable& unified = *out.db.domain_table();
  for (auto& part : parts) {
    const std::vector<core::DomainId> remap =
        unified.absorb(*part.db.domain_table());
    for (auto& event : part.dns_log) {
      event.fqdn_id = event.fqdn_id < remap.size() ? remap[event.fqdn_id]
                                                   : core::kEmptyDomainId;
      event.fqdn = unified.view(event.fqdn_id);
    }
  }
  kway_merge_into(parts, out);
  return out;
}

core::AnalysisWindow ShardedAnalyzer::retire_window(
    std::uint64_t seq, std::vector<ShardWindow>& parts) {
  if (config_.resume && seq < resume_prefix_) {
    // The crashed run's spilled bytes are authoritative for the complete
    // prefix. Any damaged record demotes the whole window to the
    // recomputed parts — byte-identical output either way (determinism),
    // just without crediting the spill.
    std::vector<core::AnalysisWindow> loaded;
    loaded.reserve(plan_.parts[seq].size());
    bool intact = true;
    for (const auto& entry : plan_.parts[seq]) {
      auto window =
          load_spilled_window(config_.spill_dir, entry, recovery_stats_);
      if (!window) {
        intact = false;
        break;
      }
      loaded.push_back(std::move(*window));
    }
    if (intact && !loaded.empty()) {
      ++windows_recovered_;
      obs::trace_event(obs::TraceStage::kMerge,
                       obs::TraceKind::kWindowRecovered, seq, obs::kNoShard,
                       loaded.size());
      return merge_recovered(loaded);
    }
    ++windows_recomputed_;
  }
  return merge_windows(parts);
}

void ShardedAnalyzer::finish() {
  if (finished_) return;
  finished_ = true;
  obs::trace_event(obs::TraceStage::kDispatch, obs::TraceKind::kPipelineFinish,
                   rotations_, obs::kNoShard, frames_dispatched_);

  // The final window's bounds: windowed mode closes the current grid
  // window (LiveAnalyzer parity); single-window mode spans the stream.
  util::Timestamp start;
  util::Timestamp end;
  if (started_) {
    if (config_.window.total_micros() > 0) {
      start = window_start_;
      end = window_start_ + config_.window;
    } else {
      start = first_ts_;
      end = last_ts_;
    }
  }
  for (std::size_t i = 0; i < config_.shards; ++i) {
    Item item;
    item.kind = Item::Kind::kStop;
    item.start = start;
    item.end = end;
    // An empty run delivers no window, matching LiveAnalyzer; the stop
    // window still flows through the merge stage to terminate it. A
    // drained run's flush window is delivered but never journaled: it is
    // truncated at the drain point, and --resume must recompute it.
    item.deliver = started_;
    item.durable = !draining_;
    push_control(i, std::move(item));
  }
  for (auto& worker : workers_) worker->thread.join();
  merge_thread_.join();
  // The watchdog keeps running until after the joins — a hang in the
  // drain itself is exactly what it exists to catch — and stops here,
  // before its stalled() verdict is folded into stats.
  if (watchdog_) watchdog_->stop();
  // All threads joined: every worker- and merge-owned counter is now
  // safely readable from this thread. Unregister the depth sampler
  // (synchronously: reset() waits out an in-flight snapshot) before
  // folding its peaks and publishing the drained-queue gauges.
  depth_sampler_.reset();
  routes_gauge_.set(static_cast<std::int64_t>(routes_.size()));
  for (std::size_t i = 0; i < config_.shards; ++i)
    depth_gauges_[i].set(
        static_cast<std::int64_t>(workers_[i]->queue.size()));

  stats_ = PipelineStats{};
  stats_.shards.resize(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    ShardStats& shard = stats_.shards[i];
    shard.frames_enqueued = dispatch_[i].enqueued;
    shard.frames_dropped = dispatch_[i].dropped;
    shard.blocked_pushes = dispatch_[i].blocked;
    shard.queue_high_water = dispatch_[i].high_water;
    shard.queue_peak_sampled =
        sampled_peaks_[i].load(std::memory_order_relaxed);
    shard.frames_processed = workers_[i]->frames_processed;
    shard.sniffer = workers_[i]->sniffer.stats();
    accumulate(stats_.merged, shard.sniffer);
    stats_.frames_dropped += shard.frames_dropped;
    stats_.windows_spilled += workers_[i]->windows_spilled;
    stats_.spill_bytes += workers_[i]->spill_bytes;
    stats_.spill_failures += workers_[i]->spill_failures;
  }
  stats_.frames_dispatched = frames_dispatched_;
  stats_.records_dispatched = records_dispatched_;
  stats_.windows_merged = windows_merged_;
  stats_.merge_total = merge_total_;
  stats_.merge_max = merge_max_;
  {
    util::MutexLock lock{inbox_->mutex};
    stats_.merge_inbox_peak = inbox_->peak;
  }
  stats_.windows_recovered = windows_recovered_;
  stats_.windows_recomputed = windows_recomputed_;
  stats_.recovery = recovery_stats_;
  stats_.stalled = watchdog_ && watchdog_->stalled();
  stats_.merged.degradation.pipeline_frames_dropped += stats_.frames_dropped;
  accumulate(stats_.merged.degradation, capture_degradation_);
}

}  // namespace dnh::pipeline

#include "pipeline/spill.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "core/flowdb_io.hpp"
#include "obs/flight.hpp"
#include "util/crc32.hpp"
#include "util/strings.hpp"

namespace dnh::pipeline {
namespace {

constexpr char kMagic[4] = {'D', 'N', 'H', 'S'};
constexpr std::size_t kFrameHeaderBytes = 12;  // magic + len + crc
constexpr std::string_view kManifestName = "manifest.dnhm";
constexpr std::string_view kWindowMeta = "#dnhunter-window v1";
constexpr std::string_view kDnsHeader = "#dnhunter-dns v1";

std::string segment_name(std::uint32_t shard) {
  return "shard-" + std::to_string(shard) + ".dnhs";
}

std::string join_path(const std::string& dir, std::string_view name) {
  if (dir.empty()) return std::string{name};
  return dir.back() == '/' ? dir + std::string{name}
                           : dir + "/" + std::string{name};
}

// Durability helpers. All writes in this file go through full_write and
// are followed by fsync before anything references them; the dnh-lint
// spill-durability rule enforces that pairing.
bool full_write(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // dnh-lint: allow(spill-durability) this loop IS the durability
    // helper; every caller carries the ordering tag and the fsync.
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

// A freshly created file is only durable once its directory entry is too;
// one directory fsync at open time covers every later append.
void fsync_dir(const std::string& dir) {
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return;
  ::fsync(dfd);
  ::close(dfd);
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

template <typename T>
bool parse_int(std::string_view field, T& out) {
  const auto result =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc{} &&
         result.ptr == field.data() + field.size();
}

std::string crc_hex(std::string_view body) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", util::crc32_ieee(body));
  return std::string{buf};
}

/// Serializes one window into the framed-record payload text.
std::string encode_payload(std::uint64_t seq,
                           const core::AnalysisWindow& window) {
  std::ostringstream out;
  out << kWindowMeta << '\t' << seq << '\t'
      << window.start.micros_since_epoch() << '\t'
      << window.end.micros_since_epoch() << '\n';
  core::write_flow_tsv(window.db, out);
  out << kDnsHeader << '\n';
  for (const auto& event : window.dns_log) {
    out << event.time.micros_since_epoch() << '\t'
        << event.client.to_string() << '\t' << event.fqdn << '\t';
    bool first = true;
    for (const auto& server : event.servers) {
      if (!first) out << ',';
      out << server.to_string();
      first = false;
    }
    out << '\n';
  }
  return std::move(out).str();
}

}  // namespace

SpillWriter::SpillWriter(const std::string& dir, std::uint32_t shard,
                         bool truncate)
    : shard_{shard}, segment_{segment_name(shard)} {
  const std::string path = join_path(dir, segment_);
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return;
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  end_offset_ = end < 0 ? 0 : static_cast<std::uint64_t>(end);
  fsync_dir(dir);
}

SpillWriter::~SpillWriter() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<SpillExtent> SpillWriter::append(
    std::uint64_t seq, const core::AnalysisWindow& window) {
  if (fd_ < 0) return std::nullopt;
  const std::string payload = encode_payload(seq, window);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kMagic, sizeof kMagic);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, util::crc32_ieee(payload));
  frame += payload;

  // dnh-lint: spill-write(fsync) the record must be on disk before the
  // manifest line that references it is appended.
  if (!full_write(fd_, frame.data(), frame.size())) return std::nullopt;
  if (::fsync(fd_) != 0) return std::nullopt;

  const SpillExtent extent{end_offset_, frame.size()};
  end_offset_ += frame.size();
  bytes_written_ += frame.size();
  // The window is durable as of the fsync above — the point the causal
  // trace calls "spilled".
  obs::trace_event(obs::TraceStage::kSpill, obs::TraceKind::kWindowSpilled,
                   seq, shard_, frame.size());
  return extent;
}

ManifestJournal::ManifestJournal(const std::string& dir, std::uint32_t shards,
                                 std::uint64_t window_us, bool truncate) {
  const std::string path = join_path(dir, kManifestName);
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return;
  fsync_dir(dir);
  // Every run appends its own header: a resumed run may use a different
  // shard count, and recovery interprets seal entries under the most
  // recent header above them (one "generation" per run).
  std::ostringstream header;
  header << "manifest\tv1\t" << shards << '\t' << window_us;
  if (!append_line(std::move(header).str())) {
    ::close(fd_);
    fd_ = -1;
  }
}

ManifestJournal::~ManifestJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool ManifestJournal::append_line(const std::string& body) {
  const std::string line = body + "\t" + crc_hex(body) + "\n";
  // dnh-lint: manifest-append(fsync) journal lines become visible to
  // recovery only after they are durable.
  if (!full_write(fd_, line.data(), line.size())) return false;
  return ::fsync(fd_) == 0;
}

bool ManifestJournal::append_seal(std::uint64_t seq, std::uint32_t shard,
                                  const std::string& segment,
                                  const SpillExtent& extent,
                                  std::uint64_t seal_seq) {
  if (fd_ < 0) return false;
  std::ostringstream body;
  body << "seal\t" << seq << '\t' << shard << '\t' << segment << '\t'
       << extent.offset << '\t' << extent.length << '\t' << seal_seq;
  return append_line(std::move(body).str());
}

namespace {

/// Seal entries of one run generation: shard count in effect plus the
/// surviving (highest seal_seq) entry per (seq, shard).
struct Generation {
  std::uint32_t shards = 0;
  // dnh-lint: allow(hot-path-bound) recovery-time scan state, one entry
  // per manifest seal line; never touched on the per-packet path.
  std::map<std::uint64_t, std::map<std::uint32_t, ManifestEntry>> seals;
};

}  // namespace

RecoveryPlan scan_spill_dir(const std::string& dir) {
  RecoveryPlan plan;
  std::ifstream in{join_path(dir, kManifestName)};
  if (!in) {
    plan.error = "no manifest journal in spill directory";
    return plan;
  }

  std::vector<Generation> generations;
  std::string line;
  while (std::getline(in, line)) {
    // A line is `<body>\t<crc32-hex>`; anything that fails the frame or
    // the CRC — including a partial final line from a torn append — ends
    // the trustworthy prefix of the journal.
    const auto tab = line.rfind('\t');
    if (tab == std::string::npos) break;
    const std::string_view body{line.data(), tab};
    const std::string_view crc{line.data() + tab + 1,
                               line.size() - tab - 1};
    if (crc.size() != 8 || crc_hex(body) != crc) break;

    const auto fields = util::split(body, '\t');
    if (fields[0] == "manifest") {
      std::uint32_t shards = 0;
      std::uint64_t window_us = 0;
      if (fields.size() != 4 || fields[1] != "v1" ||
          !parse_int(fields[2], shards) ||
          !parse_int(fields[3], window_us) || shards == 0) {
        break;
      }
      if (plan.window_us == 0) {
        plan.window_us = window_us;
      } else if (plan.window_us != window_us) {
        plan.error = "manifest generations disagree on window length";
        return plan;
      }
      generations.push_back(Generation{shards, {}});
    } else if (fields[0] == "seal") {
      if (generations.empty()) break;  // seal before any header: torn
      ManifestEntry entry;
      if (fields.size() != 7 || !parse_int(fields[1], entry.seq) ||
          !parse_int(fields[2], entry.shard) ||
          !parse_int(fields[4], entry.extent.offset) ||
          !parse_int(fields[5], entry.extent.length) ||
          !parse_int(fields[6], entry.seal_seq) ||
          entry.shard >= generations.back().shards) {
        break;
      }
      entry.segment = std::string{fields[3]};
      auto& slot = generations.back().seals[entry.seq][entry.shard];
      if (slot.segment.empty() || entry.seal_seq >= slot.seal_seq)
        slot = std::move(entry);
    } else {
      break;
    }
    ++plan.stats.manifest_lines;
  }
  // Count the torn tail: the line that broke the loop plus the rest.
  if (in || !line.empty()) {
    ++plan.stats.manifest_torn_lines;
    while (std::getline(in, line)) ++plan.stats.manifest_torn_lines;
  }

  if (generations.empty()) {
    plan.error = "manifest journal has no valid header";
    return plan;
  }

  // A window is recoverable when some generation sealed it on every one
  // of its shards; prefer the latest such generation (its bytes are the
  // freshest). The usable result is the longest complete prefix.
  for (std::uint64_t seq = 0;; ++seq) {
    const Generation* complete = nullptr;
    bool journaled = false;
    for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
      const auto found = it->seals.find(seq);
      if (found == it->seals.end()) continue;
      journaled = true;
      if (found->second.size() == it->shards) {
        complete = &*it;
        break;
      }
    }
    if (!complete) {
      if (journaled) ++plan.stats.windows_incomplete;
      break;
    }
    std::vector<ManifestEntry> parts;
    for (const auto& [shard, entry] : complete->seals.at(seq))
      parts.push_back(entry);
    plan.parts.push_back(std::move(parts));
  }
  plan.complete_prefix = plan.parts.size();
  return plan;
}

namespace {

/// Splits the validated payload into its three sections and rebuilds the
/// AnalysisWindow. Returns false on a malformed meta/section layout.
bool decode_payload(const std::string& payload, std::uint64_t expected_seq,
                    core::AnalysisWindow& window, RecoveryStats& stats) {
  const auto meta_end = payload.find('\n');
  if (meta_end == std::string::npos) return false;
  const auto meta =
      util::split(std::string_view{payload.data(), meta_end}, '\t');
  std::uint64_t seq = 0;
  std::int64_t start_us = 0, end_us = 0;
  if (meta.size() != 4 || meta[0] != kWindowMeta ||
      !parse_int(meta[1], seq) || !parse_int(meta[2], start_us) ||
      !parse_int(meta[3], end_us) || seq != expected_seq) {
    return false;
  }
  window.start = util::Timestamp::from_micros(start_us);
  window.end = util::Timestamp::from_micros(end_us);

  const std::string separator = "\n" + std::string{kDnsHeader} + "\n";
  const auto dns_at = payload.find(separator, meta_end);
  if (dns_at == std::string::npos) return false;

  // Flows section: a complete flows-TSV v1 document. The CRC already
  // vouched for the bytes, so row errors here indicate writer bugs, but
  // recovery still degrades (lenient read, typed tally) over crashing.
  std::istringstream flows_in{
      payload.substr(meta_end + 1, dns_at - meta_end - 1)};
  core::TsvRowErrors row_errors;
  auto db = core::read_flow_tsv(flows_in, core::TsvReadMode::kLenient,
                                row_errors);
  if (!db) return false;
  stats.flow_row_errors += row_errors.total();
  window.db = std::move(*db);

  // DNS section: time_us \t client \t fqdn \t comma-joined servers.
  const auto& table = window.db.domain_table();
  std::string_view rest{payload.data() + dns_at + separator.size(),
                        payload.size() - dns_at - separator.size()};
  while (!rest.empty()) {
    const auto eol = rest.find('\n');
    const std::string_view row =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 1);
    if (row.empty()) continue;
    const auto fields = util::split(row, '\t');
    core::DnsEvent event;
    std::int64_t time_us = 0;
    const auto client =
        fields.size() == 4 ? net::Ipv4Address::parse(fields[1])
                           : std::nullopt;
    if (fields.size() != 4 || !parse_int(fields[0], time_us) || !client) {
      ++stats.dns_row_errors;
      continue;
    }
    event.time = util::Timestamp::from_micros(time_us);
    event.client = *client;
    event.fqdn_id = table->intern(fields[2]);
    event.fqdn = table->view(event.fqdn_id);
    bool servers_ok = true;
    if (!fields[3].empty()) {
      for (const auto part : util::split(fields[3], ',')) {
        const auto server = net::Ipv4Address::parse(part);
        if (!server) {
          servers_ok = false;
          break;
        }
        event.servers.push_back(*server);
      }
    }
    if (!servers_ok) {
      ++stats.dns_row_errors;
      continue;
    }
    window.dns_log.push_back(std::move(event));
  }
  return true;
}

}  // namespace

// dnh-analyze: shard-local-ids
std::optional<core::AnalysisWindow> load_spilled_window(
    const std::string& dir, const ManifestEntry& entry,
    RecoveryStats& stats) {
  std::ifstream in{join_path(dir, entry.segment), std::ios::binary};
  if (!in) {
    ++stats.records_torn;
    return std::nullopt;
  }
  if (entry.extent.length < kFrameHeaderBytes) {
    ++stats.records_torn;
    return std::nullopt;
  }
  in.seekg(static_cast<std::streamoff>(entry.extent.offset));
  std::string frame(entry.extent.length, '\0');
  in.read(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (static_cast<std::uint64_t>(in.gcount()) != entry.extent.length) {
    ++stats.records_torn;  // extent runs past the segment: torn write
    return std::nullopt;
  }
  if (std::memcmp(frame.data(), kMagic, sizeof kMagic) != 0) {
    ++stats.records_bad_crc;
    return std::nullopt;
  }
  const std::uint32_t payload_len = get_u32le(frame.data() + 4);
  const std::uint32_t crc = get_u32le(frame.data() + 8);
  if (payload_len != entry.extent.length - kFrameHeaderBytes) {
    ++stats.records_bad_crc;
    return std::nullopt;
  }
  const std::string payload = frame.substr(kFrameHeaderBytes);
  if (util::crc32_ieee(payload) != crc) {
    ++stats.records_bad_crc;
    return std::nullopt;
  }

  core::AnalysisWindow window;
  if (!decode_payload(payload, entry.seq, window, stats)) {
    ++stats.records_bad_crc;
    return std::nullopt;
  }
  ++stats.windows_recovered;
  return window;
}

}  // namespace dnh::pipeline

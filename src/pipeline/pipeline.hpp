// Sharded parallel ingestion: the scale-out layer between capture and
// analytics (docs/pipeline.md has the full architecture discussion).
//
//           ┌─ SPSC ring ─▶ shard 0 (private Sniffer) ─┬─▶ spill ─┐
//  capture ─┤─ SPSC ring ─▶ shard 1 (private Sniffer) ─┼─▶ spill ─┼▶ merge ─▶ sink
//  (dispatcher, client-IP hash)        ...             ┘ (fsync'd) ┘ (k-way)
//
// The dispatcher routes every frame to a shard by a hash of its CLIENT
// address (the FlowDNS recipe: DNS/flow correlation is keyed by client, so
// client-sharding gives each worker a private DNS resolver replica and a
// private flow table with zero cross-shard synchronization on the hot
// path). A connection-affinity table pins each 5-tuple to the shard its
// first packet chose, so both directions of a connection stay together
// even when per-packet orientation is ambiguous (ephemeral-to-ephemeral
// port pairs). Each worker canonically sorts the windows it seals, so the
// merge stage is an incremental k-way merge: a window is retired (merged
// and handed to the sink) as soon as every shard has sealed it, through a
// BOUNDED inbox — merge-stage memory scales with the window horizon, not
// the capture length. The merged FlowDatabase and DNS log are
// byte-identical to what the single-threaded Sniffer would have produced.
//
// Durability (docs/recovery.md): with a spill directory configured, every
// sealed per-shard window is CRC-framed into that shard's spill segment
// and fsync'd before the merge thread journals it in the manifest; a
// crashed run resumes with `resume = true`, which re-ingests the capture
// (cross-window resolver/flow state is not durable) but serves the
// manifest's complete window prefix from the spilled bytes, falling back
// to the recomputed window — with typed RecoveryStats — when a record is
// torn or corrupt. Output is byte-identical either way.
//
// Lifecycle supervision (supervisor.hpp): per-stage heartbeats feed an
// optional watchdog that turns a wedged pipeline into a typed
// StallDiagnostic, and a drain check lets SIGINT/SIGTERM end ingestion
// through the normal seal-spill-merge path.
//
// Determinism contract (see docs/pipeline.md for the full argument): on a
// clean, time-ordered capture whose working set fits the per-shard bounds
// (no Clist/DNS-log/TCP-buffer evictions), `shards = N` produces exactly
// the canonicalized single-threaded result for every N.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/live.hpp"
#include "core/sniffer.hpp"
#include "flow/flow.hpp"
#include "flowexport/orient.hpp"
#include "flowexport/wire.hpp"
#include "net/bytes.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pipeline/spill.hpp"
#include "pipeline/supervisor.hpp"
#include "util/time.hpp"

namespace dnh::pcap {
struct CorruptionStats;
}

namespace dnh::pipeline {

/// What the dispatcher does when a shard's frame queue is full.
enum class BackpressurePolicy {
  /// Wait (spin, then yield, then sleep) until the shard drains a slot.
  /// Lossless; an overloaded shard stalls the capture feed. The pcap
  /// replay default.
  kBlock,
  /// Shed the frame and count it (ShardStats::frames_dropped, folded into
  /// DegradationStats::pipeline_frames_dropped). Bounded latency; the
  /// live-capture policy where stalling the feed would drop packets in
  /// the kernel anyway, invisibly.
  kDrop,
};

struct PipelineConfig {
  /// Worker shard count (the CLI's --jobs). 1 still runs the full
  /// dispatcher/worker/merge machinery with a single shard.
  std::size_t shards = 2;
  /// Per-shard frame-queue capacity in frames (rounded up to a power of
  /// two). Sized so a burst at line rate amortizes scheduling jitter
  /// without letting queues hide seconds of latency.
  std::size_t queue_capacity = 1 << 12;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Applied to every shard's private Sniffer. Each shard gets the FULL
  /// clist_size: entries are keyed by client and clients never share
  /// entries, so private full-size Clists reproduce single-threaded
  /// tagging exactly (at N× the memory — see docs/pipeline.md).
  core::SnifferConfig sniffer;
  /// Window rotation length; zero (default) delivers one merged window
  /// covering the whole stream at finish(). Non-zero mirrors
  /// core::LiveAnalyzer: boundaries aligned to multiples of the length,
  /// one merged window delivered per boundary crossed.
  util::Duration window{};
  /// Best-effort CPU pinning (the CLI's --pin-shards): shard worker i is
  /// affined to CPU (i+1) % hw_threads via sched_setaffinity, keeping each
  /// shard's flat tables warm in one core's cache instead of migrating.
  /// Silent no-op off Linux, when hw_threads == 1, or when the syscall is
  /// refused (restricted cpusets). Output is unaffected either way — this
  /// is purely a locality hint.
  bool pin_shards = false;
  /// Test seam: invoked on each worker thread before it consumes its
  /// first item. Tests block here to hold queues full and exercise the
  /// backpressure paths deterministically. Leave empty in production.
  std::function<void(std::size_t shard)> worker_start_hook;

  /// Spill directory for sealed-window durability; empty disables
  /// spilling. When set, each shard appends every window it seals to its
  /// own CRC-framed segment (fsync'd) and the merge thread journals it in
  /// the manifest before the window can be considered durable.
  std::string spill_dir;
  /// Resume from `spill_dir`: replay the manifest, serve the complete
  /// window prefix from spilled bytes (falling back to recomputation on
  /// damage), and append new seals after it. A fresh run (resume = false)
  /// truncates any previous spill state in the directory.
  bool resume = false;
  /// Bounded merge-inbox capacity in window messages; 0 picks
  /// max(2 * shards, 4). Workers sealing ahead of the merge thread block
  /// here — this is the streaming-memory bound.
  std::size_t merge_inbox_capacity = 0;
  /// Watchdog stall timeout; zero (default) disables the watchdog.
  util::Duration watchdog_timeout{};
  /// Invoked on the watchdog thread when a stall is declared (see
  /// WatchdogConfig::on_stall). The CLI prints the diagnostic and exits.
  std::function<void(const StallDiagnostic&)> on_stall;
  /// Polled by the dispatcher between frames: returning true stops
  /// ingestion (frames are ignored from then on) so finish() runs the
  /// ordinary seal-spill-merge path. Wire to pipeline::drain_requested
  /// for signal-driven graceful shutdown.
  std::function<bool()> drain_check;
};

/// Per-shard counters. Dispatcher-side fields (enqueued/dropped/blocked/
/// high-water) and worker-side fields (processed + sniffer) are sampled
/// together when the pipeline finishes.
struct ShardStats {
  std::uint64_t frames_enqueued = 0;   ///< frames accepted into the queue
  std::uint64_t frames_processed = 0;  ///< frames the worker consumed
  std::uint64_t frames_dropped = 0;    ///< shed at full queue (kDrop)
  std::uint64_t blocked_pushes = 0;    ///< pushes that had to wait (kBlock)
  std::size_t queue_high_water = 0;    ///< max occupancy seen at enqueue
  /// Max occupancy seen by the metrics snapshot sampler — depth on the
  /// snapshot interval, not per-push, so it reflects sustained backlog
  /// rather than single-frame ripples. Zero when no exporter sampled.
  std::size_t queue_peak_sampled = 0;
  core::SnifferStats sniffer;          ///< the shard's final sniffer stats
};

/// Snapshot of a finished pipeline run, for dimensioning studies: how did
/// load spread over shards, how deep did queues run, what did merging cost.
struct PipelineStats {
  std::vector<ShardStats> shards;
  std::uint64_t frames_dispatched = 0;  ///< frames offered to the pipeline
  std::uint64_t records_dispatched = 0; ///< flow-export records dispatched
  std::uint64_t frames_dropped = 0;     ///< total shed over all shards
  std::uint64_t windows_merged = 0;     ///< merged windows delivered
  util::Duration merge_total{};         ///< wall time spent in merges
  util::Duration merge_max{};           ///< slowest single merge
  /// Peak simultaneous window messages in the merge inbox (bounded by
  /// PipelineConfig::merge_inbox_capacity — the streaming-memory claim).
  std::size_t merge_inbox_peak = 0;
  std::uint64_t windows_spilled = 0;    ///< per-shard windows made durable
  std::uint64_t spill_bytes = 0;        ///< framed bytes appended to segments
  std::uint64_t spill_failures = 0;     ///< appends that failed (I/O error)
  /// Resume accounting: windows in the manifest's complete prefix served
  /// from spilled bytes vs. recomputed because their records were damaged.
  std::uint64_t windows_recovered = 0;
  std::uint64_t windows_recomputed = 0;
  RecoveryStats recovery;               ///< typed spill/manifest damage tally
  bool stalled = false;                 ///< the watchdog declared a stall
  /// Field-wise sum of every shard's SnifferStats (plus capture-container
  /// corruption seen by the dispatcher and pipeline drop accounting): the
  /// counters a single-threaded Sniffer over the same stream would report.
  core::SnifferStats merged;
};

/// Canonical total order used by the merge stage (and by the CLI so that
/// --jobs 1 and --jobs N byte-match): flows by (first packet, 5-tuple,
/// ...), DNS events by (time, client, fqdn, servers).
bool canonical_less(const core::TaggedFlow& a, const core::TaggedFlow& b);
bool canonical_less(const core::DnsEvent& a, const core::DnsEvent& b);

/// Rebuilds `db` with its flows in canonical order (indexes included).
void canonicalize(core::FlowDatabase& db);
/// Sorts a DNS event log into canonical order.
void canonicalize(std::vector<core::DnsEvent>& log);
inline void canonicalize(core::AnalysisWindow& window) {
  canonicalize(window.db);
  canonicalize(window.dns_log);
}

/// The multi-threaded streaming engine. Feed frames from ONE thread (the
/// caller becomes the dispatcher stage); windows arrive on the merge
/// thread via the sink; finish() flushes, joins, and freezes stats().
class ShardedAnalyzer {
 public:
  /// Receives each merged window, canonically sorted. Invoked on the
  /// merge thread, strictly in window order.
  using WindowSink = std::function<void(core::AnalysisWindow&&)>;

  ShardedAnalyzer(PipelineConfig config, WindowSink sink);
  ~ShardedAnalyzer();  ///< calls finish() if the caller did not

  ShardedAnalyzer(const ShardedAnalyzer&) = delete;
  ShardedAnalyzer& operator=(const ShardedAnalyzer&) = delete;

  /// Dispatches one link-layer frame (copied into a recycled ring slot).
  /// Frames must arrive in non-decreasing timestamp order for the
  /// determinism guarantee to hold (same contract as pcap replay).
  void on_frame(net::BytesView frame, util::Timestamp ts);

  /// Dispatches one decoded flow-export record (flow-export ingest; see
  /// docs/flow-export.md). The record is oriented here — one orienter must
  /// see every record of a pair, and dispatcher-side orientation keeps
  /// --jobs N identical to --jobs 1 — then routed to the shard owning its
  /// client address, the shard whose resolver replica holds that client's
  /// DNS history. `arrival` (the export datagram's collector-arrival time)
  /// is clamped monotone against the dispatch clock, so a reordered export
  /// stream cannot step the window clock backwards.
  void on_export_record(const flowexport::ExportRecord& record,
                        util::Timestamp arrival);

  /// Streams a capture file (classic pcap or pcapng) through the
  /// pipeline. Returns false if the file cannot be opened or aborts
  /// mid-stream (see error()); frames already dispatched are processed.
  bool process_pcap(const std::string& path);

  /// Flushes every shard, merges the final window, joins all threads.
  /// Idempotent; after it returns stats() is complete and stable.
  void finish();

  /// Complete only after finish(); live reads see partial dispatch-side
  /// counters but no worker/merge-side data.
  const PipelineStats& stats() const noexcept { return stats_; }

  const std::string& error() const noexcept { return error_; }
  std::size_t shard_count() const noexcept { return config_.shards; }
  /// The effective configuration (after shard-count fixups).
  const PipelineConfig& config() const noexcept { return config_; }

  /// Folds capture-container damage observed by an external reader (a
  /// FlowSource that owns its own pcap read) into the merged degradation
  /// stats, exactly as process_pcap does for the reader it owns. Call from
  /// the dispatcher thread, before finish().
  void note_capture_corruption(const pcap::CorruptionStats& corruption);

  /// The stateless dispatch heuristic, exposed for tests and dimensioning
  /// studies: which shard (0..shards-1) a frame would route to on first
  /// sight. Pure: client address extracted by the flow-orientation rules
  /// (DNS frames key on the client side of the response), hashed, reduced
  /// mod `shards`. Undecodable and non-IPv4 frames route to shard 0.
  ///
  /// The live dispatcher wraps this in a connection-affinity table
  /// (route_frame): the first packet of a 5-tuple pins its shard, and
  /// every later packet of that connection — in either direction —
  /// follows it. Without the pin, connections whose SYN-based
  /// orientation disagrees with the port heuristic (e.g. both ports
  /// ephemeral with server > client) would have their two directions
  /// hash to different shards and fork into half-flows.
  static std::size_t shard_for(net::BytesView frame, std::size_t shards);

 private:
  struct Item;
  struct Worker;
  struct ShardWindow;

  // Thread-ownership map (checked by the -Wthread-safety build plus the
  // dnh-lint ring-role tags at the SPSC push/pop sites; see
  // docs/static-analysis.md):
  //  - dispatcher thread (the caller of on_frame/process_pcap/finish):
  //    route_frame/dispatch_frame/push_control/broadcast_rotation, all
  //    ring produce sides, and every `Dispatcher-owned` member below.
  //  - worker thread i: worker_loop(i), shard i's ring consume side, and
  //    Worker::sniffer/frames_processed until finish() joins it.
  //  - merge thread: merge_loop/merge_windows and the merge-owned
  //    members; hands windows to the sink strictly in order.
  // Cross-thread state is either a lock-free channel (SpscRing), a
  // mutex-guarded inbox (MergeInbox, annotated), or atomics
  // (sampled_peaks_).
  std::size_t route_frame(net::BytesView frame, util::Timestamp ts);
  void dispatch_frame(net::BytesView frame, util::Timestamp ts);
  /// Drains shard's dispatcher-side staging buffer into its ring in one
  /// batched produce (dropping or blocking per the backpressure policy).
  void flush_stage(std::size_t shard);
  void push_control(std::size_t shard, Item&& item);
  void broadcast_rotation(util::Timestamp start, util::Timestamp end);
  void worker_loop(std::size_t index);
  void merge_loop();
  /// K-way merge of canonically pre-sorted per-shard windows.
  core::AnalysisWindow merge_windows(std::vector<ShardWindow>& parts);
  /// Merge of windows recovered from spill (DomainTable::absorb remap).
  core::AnalysisWindow merge_recovered(
      std::vector<core::AnalysisWindow>& parts);
  /// Retires sequence `seq`: on resume, prefers the spilled bytes for the
  /// recovered prefix; otherwise merges the recomputed parts.
  core::AnalysisWindow retire_window(std::uint64_t seq,
                                     std::vector<ShardWindow>& parts);

  PipelineConfig config_;
  WindowSink sink_;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Dispatcher-owned (the thread calling on_frame/process_pcap).
  struct DispatchCounters {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t blocked = 0;
    std::size_t high_water = 0;
  };
  std::vector<DispatchCounters> dispatch_;
  // Connection-affinity routing table: direction-free 5-tuple -> pinned
  // shard. Entries expire on the flow table's idle timeout (checked
  // against the arriving packet, so expiry mirrors the table's
  // arrival-driven flow split) and are swept on its cadence to bound
  // memory. Dispatcher-thread-only; no synchronisation.
  struct Route {
    std::size_t shard = 0;
    util::Timestamp last;
  };
  // dnh-lint: bounded(sweep_interval_packets) idle entries expire against
  // the arriving packet and are swept on the flow table's cadence.
  std::unordered_map<flow::FlowKey, Route> routes_;
  /// Record orientation state (flow-export ingest). Dispatcher-thread-only.
  flowexport::RecordOrienter orienter_;
  std::uint64_t routed_packets_ = 0;
  std::uint64_t frames_dispatched_ = 0;
  std::uint64_t records_dispatched_ = 0;
  bool started_ = false;
  util::Timestamp window_start_;  ///< current boundary (windowed mode)
  util::Timestamp first_ts_;
  util::Timestamp last_ts_;
  std::uint64_t rotations_ = 0;
  bool draining_ = false;  ///< drain_check fired; frames ignored
  core::DegradationStats capture_degradation_;  ///< resync damage seen

  // Durability. Writers are indexed by shard and thread-confined to that
  // shard's worker after construction; the manifest is appended only by
  // the merge thread (after the worker's segment fsync, which the inbox
  // hand-off sequences before it). The recovery plan is scanned in the
  // constructor and read-only afterwards.
  std::vector<std::unique_ptr<SpillWriter>> spill_writers_;
  std::unique_ptr<ManifestJournal> manifest_;
  RecoveryPlan plan_;
  std::uint64_t resume_prefix_ = 0;  ///< windows served from spill

  // Merge channel (workers -> merge thread; per-window, off the hot path).
  struct MergeInbox;
  std::unique_ptr<MergeInbox> inbox_;
  std::thread merge_thread_;

  // Merge-thread-owned until finish() joins.
  std::uint64_t windows_merged_ = 0;
  util::Duration merge_total_{};
  util::Duration merge_max_{};
  std::uint64_t seal_seq_ = 0;          ///< manifest append ordinal
  std::uint64_t windows_recovered_ = 0;
  std::uint64_t windows_recomputed_ = 0;
  RecoveryStats recovery_stats_;

  // Lifecycle supervision. The board is fully populated in the
  // constructor before any thread starts; the watchdog (optional) is the
  // only reader and stops before stats are folded.
  obs::HeartbeatBoard heartbeats_;
  obs::HeartbeatBoard::StageId dispatch_hb_ = 0;
  std::vector<obs::HeartbeatBoard::StageId> worker_hb_;
  obs::HeartbeatBoard::StageId merge_hb_ = 0;
  std::unique_ptr<Watchdog> watchdog_;

  bool finished_ = false;
  PipelineStats stats_;
  std::string error_;

  // Observability (docs/observability.md). The queue-depth sampler runs
  // on the metrics snapshot thread and reads only the rings' atomic
  // cursors; it is unregistered (synchronously — see SamplerHandle) in
  // finish() before the sampled peaks are folded into stats_.
  obs::SampleGate dispatch_gate_{64};
  obs::Gauge routes_gauge_;
  obs::Gauge inbox_depth_gauge_;   ///< dnh_merge_inbox_depth
  obs::Gauge spill_bytes_gauge_;   ///< dnh_spill_bytes
  std::vector<obs::Gauge> depth_gauges_;  ///< dnh_shard_queue_depth{shard=i}
  std::unique_ptr<std::atomic<std::size_t>[]> sampled_peaks_;
  obs::Registry::SamplerHandle depth_sampler_;
};

}  // namespace dnh::pipeline

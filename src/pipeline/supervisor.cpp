#include "pipeline/supervisor.hpp"

#include <csignal>
#include <chrono>
#include <sstream>

#include "obs/flight.hpp"

namespace dnh::pipeline {

std::string StallDiagnostic::to_string() const {
  std::ostringstream out;
  out << "pipeline stall: no stage heartbeat advanced for "
      << util::format_duration(stalled_for) << " with work pending ("
      << pending << "); per-stage beats at detection:";
  for (const auto& stage : stages)
    out << ' ' << stage.name << '=' << stage.beats;
  if (!trace_excerpt.empty()) out << '\n' << trace_excerpt;
  return std::move(out).str();
}

Watchdog::Watchdog(const obs::HeartbeatBoard& board, WatchdogConfig config)
    : board_{board}, config_{std::move(config)} {
  thread_ = std::thread{[this] { run(); }};
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  {
    util::MutexLock lock{mu_};
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Watchdog::stalled() const noexcept {
  return stalled_.load(std::memory_order_relaxed);
}

void Watchdog::run() {
  using Clock = std::chrono::steady_clock;
  const auto timeout =
      std::chrono::microseconds{config_.timeout.total_micros()};
  auto poll = std::chrono::microseconds{config_.poll.total_micros()};
  if (poll > timeout / 2) poll = timeout / 2;
  if (poll <= std::chrono::microseconds::zero())
    poll = std::chrono::microseconds{1000};

  std::vector<std::uint64_t> last(board_.stages());
  for (std::size_t i = 0; i < last.size(); ++i) last[i] = board_.count(i);
  auto deadline = Clock::now() + timeout;

  while (true) {
    {
      util::MutexLock lock{mu_};
      if (stop_requested_) return;
      cv_.wait_for(lock, poll);
      if (stop_requested_) return;
    }
    bool advanced = false;
    for (std::size_t i = 0; i < last.size(); ++i) {
      const std::uint64_t count = board_.count(i);
      if (count != last[i]) {
        last[i] = count;
        advanced = true;
      }
    }
    const auto now = Clock::now();
    if (advanced) {
      deadline = now + timeout;
      continue;
    }
    if (now < deadline) continue;

    // Quiescent past the timeout — but only a stall if work is pending;
    // otherwise this is an idle pipeline (e.g. between captures) and the
    // clock simply restarts.
    std::string pending_desc;
    if (!config_.pending || !config_.pending(pending_desc)) {
      deadline = now + timeout;
      continue;
    }
    StallDiagnostic diag;
    diag.stalled_for = util::Duration::micros(
        std::chrono::duration_cast<std::chrono::microseconds>(
            timeout + (now - deadline))
            .count());
    diag.pending = std::move(pending_desc);
    diag.stages.reserve(last.size());
    for (std::size_t i = 0; i < last.size(); ++i)
      diag.stages.push_back({board_.name(i), last[i]});
    // Forensics: record the declaration itself, then attach the flight
    // recorder's recent history so exit-4 output explains the freeze.
    obs::FlightRecorder::global().set_thread_label("watchdog");
    obs::trace_event(obs::TraceStage::kWatchdog, obs::TraceKind::kStallDeclared,
                     obs::kNoSeq, obs::kNoShard,
                     static_cast<std::uint64_t>(diag.stalled_for.total_micros()));
    diag.trace_excerpt = obs::FlightRecorder::global().excerpt(6);
    stalled_.store(true, std::memory_order_relaxed);
    if (config_.on_stall) config_.on_stall(diag);
    return;  // one diagnostic per watchdog: fail fast, don't spam
  }
}

namespace {

/// Async-signal-safe by construction: the handler touches nothing but
/// this flag. sig_atomic_t (not std::atomic) because that is the only
/// type the C standard guarantees for signal handlers.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void drain_signal_handler(int) { g_drain_requested = 1; }

}  // namespace

void install_drain_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: in-flight capture reads resume instead of failing with
  // EINTR; the dispatcher notices the flag between frame batches, which
  // is prompt enough and never corrupts a strict read.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool drain_requested() noexcept { return g_drain_requested != 0; }

void request_drain() noexcept { g_drain_requested = 1; }

void reset_drain_flag() noexcept { g_drain_requested = 0; }

}  // namespace dnh::pipeline

// Sealed-window spill and the manifest journal: the durability layer under
// the streaming merge (docs/recovery.md).
//
// Every window a shard seals is appended to that shard's spill segment as
// one CRC32-framed record *and fsync'd* before a manifest-journal line
// announcing it is appended (and itself fsync'd). The ordering is the
// whole crash-safety argument: a manifest line never points at bytes that
// might not have reached the disk, so recovery can trust any line whose
// own CRC verifies and treat everything after the first bad line as a
// torn tail.
//
// On-disk layout under the spill directory:
//   manifest.dnhm   append-only text journal, one CRC-suffixed line each
//   shard-<N>.dnhs  per-shard segment of framed window records
//
// Segment record framing (little-endian):
//   "DNHS" | u32 payload_len | u32 crc32(payload) | payload
// The payload is text: a window meta line, the window's flows as the
// flowdb_io flows-TSV v1 document, then a "#dnhunter-dns v1" section with
// one row per retained DnsEvent.
//
// Manifest lines are `<body>\t<crc32-hex-of-body>`:
//   header  manifest\tv1\t<shards>\t<window_us>
//   entry   seal\t<seq>\t<shard>\t<segment>\t<offset>\t<length>\t<seal_seq>
// A resumed run appends a fresh header (its shard count may differ), so a
// journal holds one header per run generation; a window is recoverable
// when some generation sealed it on every one of that generation's shards.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/live.hpp"

namespace dnh::pipeline {

/// Where one framed window record landed inside a segment.
struct SpillExtent {
  std::uint64_t offset = 0;  ///< byte offset of the "DNHS" magic
  std::uint64_t length = 0;  ///< framed length, header included
};

/// Per-shard segment writer. Opens (creating or appending) the shard's
/// segment file; every append() is fully written and fsync'd before it
/// returns, so a returned extent is safe to journal.
class SpillWriter {
 public:
  /// `truncate` discards any previous segment content (fresh runs);
  /// resumed runs append, leaving dead torn bytes addressed around via
  /// manifest offsets.
  SpillWriter(const std::string& dir, std::uint32_t shard, bool truncate);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  bool ok() const noexcept { return fd_ >= 0; }

  /// Appends one sealed window as a framed record and fsyncs the segment.
  /// Returns the record's extent, or nullopt on any I/O failure.
  std::optional<SpillExtent> append(std::uint64_t seq,
                                    const core::AnalysisWindow& window);

  /// Segment file name relative to the spill dir ("shard-3.dnhs").
  const std::string& segment() const noexcept { return segment_; }

  /// Total framed bytes appended by this writer (the dnh_spill_bytes
  /// contribution of this shard).
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }

 private:
  int fd_ = -1;
  std::uint32_t shard_ = 0;
  std::string segment_;
  std::uint64_t end_offset_ = 0;  ///< current end of the segment file
  std::uint64_t bytes_written_ = 0;
};

/// Append-only journal of sealed windows, shared by all shards (appends
/// are internally unsynchronized — the pipeline serializes them on the
/// merge thread). Each append is CRC-suffixed and fsync'd; callers must
/// fsync the segment first (SpillWriter::append does).
class ManifestJournal {
 public:
  /// Opens the journal, truncating first when `truncate` (fresh run), and
  /// appends this run's header line.
  ManifestJournal(const std::string& dir, std::uint32_t shards,
                  std::uint64_t window_us, bool truncate);
  ~ManifestJournal();

  ManifestJournal(const ManifestJournal&) = delete;
  ManifestJournal& operator=(const ManifestJournal&) = delete;

  bool ok() const noexcept { return fd_ >= 0; }

  /// Journals one sealed window part. `seal_seq` is a per-run monotone
  /// counter used for last-write-wins when a crashed run left duplicates.
  bool append_seal(std::uint64_t seq, std::uint32_t shard,
                   const std::string& segment, const SpillExtent& extent,
                   std::uint64_t seal_seq);

 private:
  bool append_line(const std::string& body);

  int fd_ = -1;
};

/// One validated manifest seal entry.
struct ManifestEntry {
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  std::string segment;
  SpillExtent extent;
  std::uint64_t seal_seq = 0;
};

/// Typed accounting of everything recovery tolerated instead of crashing
/// on. Surfaced by `dnhunter --resume` and asserted by the chaos tests.
struct RecoveryStats {
  std::uint64_t manifest_lines = 0;        ///< well-formed lines accepted
  std::uint64_t manifest_torn_lines = 0;   ///< lines dropped at the tail
  std::uint64_t windows_recovered = 0;     ///< complete windows loaded
  std::uint64_t windows_incomplete = 0;    ///< journaled but not by all shards
  std::uint64_t records_bad_crc = 0;       ///< segment records failing CRC
  std::uint64_t records_torn = 0;          ///< extents past the segment end
  std::uint64_t flow_row_errors = 0;       ///< flows-TSV rows dropped on load
  std::uint64_t dns_row_errors = 0;        ///< DNS rows dropped on load

  std::uint64_t total_anomalies() const noexcept {
    return manifest_torn_lines + windows_incomplete + records_bad_crc +
           records_torn + flow_row_errors + dns_row_errors;
  }
};

/// The manifest's answer to "what can this directory give back?": the
/// longest window prefix [0, complete_prefix) for which every window was
/// sealed by every shard of some run generation, plus the entries to load
/// each of those windows. Segment records are NOT validated here — a load
/// failure later shrinks the usable prefix (pipeline.cpp).
struct RecoveryPlan {
  std::uint64_t window_us = 0;       ///< window length all generations share
  std::uint64_t complete_prefix = 0;
  /// parts[seq] = one entry per shard of the generation that completed
  /// `seq`, shard-ascending; sized complete_prefix.
  std::vector<std::vector<ManifestEntry>> parts;
  RecoveryStats stats;
  /// Non-empty when the directory is unusable (no/invalid manifest
  /// header, window-length mismatch between generations).
  std::string error;

  bool usable() const noexcept { return error.empty(); }
};

/// Replays the manifest journal: validates line CRCs, stops at the first
/// torn line, resolves duplicate seals (highest seal_seq wins), and
/// computes the complete window prefix.
RecoveryPlan scan_spill_dir(const std::string& dir);

/// Loads one spilled window record, verifying frame magic, length, and
/// CRC. Returns nullopt on any damage (tallied into `stats`); the caller
/// treats that window — and all windows after it — as unrecoverable.
std::optional<core::AnalysisWindow> load_spilled_window(
    const std::string& dir, const ManifestEntry& entry, RecoveryStats& stats);

}  // namespace dnh::pipeline

// Supervised pipeline lifecycle: the watchdog that turns a silent hang
// into a typed diagnostic, and the process-wide drain flag that turns
// SIGINT/SIGTERM into a graceful seal-spill-merge-exit sequence.
//
// The watchdog detects stalls by GROUP quiescence over a HeartbeatBoard:
// it fires only when (a) no stage's heartbeat advanced across a full
// timeout interval AND (b) the pipeline still has pending work (frames in
// a ring, windows in the merge inbox). A busy stage resets the clock for
// everyone; an idle-but-healthy pipeline (nothing pending) never trips.
// That rule has no false positives under legitimately uneven shard load —
// the failure mode single-stage rate thresholds are plagued by.
//
// Signal handling is intentionally minimal: the handlers only set a
// sig_atomic_t flag; the pipeline's dispatcher polls drain_requested()
// between batches and initiates the ordinary end-of-capture path (seal,
// spill, merge, flush metrics, exit 0).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/heartbeat.hpp"
#include "util/mutex.hpp"
#include "util/time.hpp"

namespace dnh::pipeline {

/// What the watchdog saw when it declared a stall. Carries enough to
/// attribute the hang: every stage's beat count (frozen by definition of
/// group quiescence) and which pending-work condition kept the pipeline
/// from counting as idle.
struct StallDiagnostic {
  struct Stage {
    std::string name;
    std::uint64_t beats = 0;
  };
  std::vector<Stage> stages;
  /// Real (not capture) time with no progress, at detection.
  util::Duration stalled_for;
  /// Which pending-work signal was set ("frames queued in shard rings",
  /// "windows waiting in merge inbox", ...).
  std::string pending;
  /// Flight-recorder excerpt (last few events per stage) captured at
  /// detection: the event history that says WHERE the pipeline froze,
  /// not just that it did (docs/observability.md).
  std::string trace_excerpt;

  /// One-paragraph human rendering for logs / stderr.
  std::string to_string() const;
};

struct WatchdogConfig {
  /// Real-time window with zero beats (while work is pending) that
  /// counts as a stall.
  util::Duration timeout = util::Duration::seconds(30);
  /// How often the board is polled. Clamped to <= timeout/2.
  util::Duration poll = util::Duration::seconds(1);
  /// Returns true when the pipeline has undone work, describing it into
  /// the out-param. Must only read cross-thread-safe state (ring cursors,
  /// inbox size under its own mutex). Quiescence with NO pending work is
  /// idle, not a stall.
  std::function<bool(std::string&)> pending;
  /// Invoked (once; the watchdog then disarms) on the watchdog thread
  /// when a stall is declared. The dnhunter default prints the diagnostic
  /// and exits 4; tests substitute a recorder.
  std::function<void(const StallDiagnostic&)> on_stall;
};

/// Background monitor of a HeartbeatBoard. Started on construction,
/// joined on destruction or stop(); the board must outlive it and be
/// fully populated (all add_stage calls done) before construction.
class Watchdog {
 public:
  Watchdog(const obs::HeartbeatBoard& board, WatchdogConfig config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stops monitoring and joins the thread. Idempotent.
  void stop();

  /// True if a stall was declared at any point (for stats reporting).
  bool stalled() const noexcept;

 private:
  void run();

  const obs::HeartbeatBoard& board_;
  WatchdogConfig config_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool stop_requested_ DNH_GUARDED_BY(mu_) = false;
  std::atomic<bool> stalled_{false};
  std::thread thread_;
};

/// Installs SIGINT/SIGTERM handlers that set the process drain flag.
/// Idempotent; call once from main before starting the pipeline.
void install_drain_signal_handlers();

/// True once SIGINT/SIGTERM arrived (or request_drain() was called): the
/// pipeline should stop ingesting and run its normal completion path.
bool drain_requested() noexcept;

/// Sets the drain flag programmatically (tests, embedders).
void request_drain() noexcept;

/// Clears the flag so one process can run several pipelines (tests).
void reset_drain_flag() noexcept;

}  // namespace dnh::pipeline

// Pluggable flow-source front-ends for the sharded pipeline.
//
// A ShardedAnalyzer consumes two kinds of flow evidence: link-layer frames
// (packet-derived flows, reconstructed by each shard's flow table) and
// flow-export records (record-derived flows, pre-summarized by a router —
// see docs/flow-export.md). A FlowSource is whatever produces that stream:
// one capture file, a directory of rotated captures, or a NetFlow/IPFIX
// datagram stream replayed against a DNS-only capture. The CLI picks the
// source; the analyzer, merge stage, tagging and TSV output are identical
// behind all of them.
#pragma once

#include <string>
#include <vector>

#include "flowexport/stream.hpp"
#include "flowexport/wire.hpp"
#include "pipeline/pipeline.hpp"

namespace dnh::pipeline {

/// One stream of flow evidence, pumped into an analyzer. run() feeds the
/// whole source (frames and/or export records) but never calls
/// analyzer.finish() — the caller owns the analyzer lifecycle.
class FlowSource {
 public:
  virtual ~FlowSource() = default;

  /// Streams the entire source through `analyzer`. Returns false when the
  /// source cannot be opened or aborts mid-stream (partial processing may
  /// have occurred; see error()).
  virtual bool run(ShardedAnalyzer& analyzer) = 0;

  const std::string& error() const noexcept { return error_; }

 protected:
  std::string error_;
};

/// Packet-derived flows from one capture file (classic pcap or pcapng).
class PcapFileSource final : public FlowSource {
 public:
  explicit PcapFileSource(std::string path) : path_{std::move(path)} {}
  bool run(ShardedAnalyzer& analyzer) override;

 private:
  std::string path_;
};

/// Packet-derived flows from a directory of rotated capture files,
/// replayed in lexicographic filename order (rotation tools timestamp
/// their names, so that is chronological order) through ONE analyzer:
/// connections spanning a rotation boundary reassemble exactly as if the
/// capture had been one file, so the result is byte-identical to running
/// the concatenated capture.
class CaptureDirSource final : public FlowSource {
 public:
  explicit CaptureDirSource(std::string dir) : dir_{std::move(dir)} {}
  bool run(ShardedAnalyzer& analyzer) override;

  /// The capture files (*.pcap, *.pcapng, *.cap) a scan of `dir` yields,
  /// in replay order. Exposed for tests and the CLI's run summary.
  static std::vector<std::string> list_captures(const std::string& dir);

  std::size_t files_replayed() const noexcept { return files_replayed_; }

 private:
  std::string dir_;
  std::size_t files_replayed_ = 0;
};

/// Record-derived flows: a DNHX flow-export datagram stream decoded
/// (NetFlow v5 / IPFIX) into export records, merged by arrival time with
/// an optional DNS capture. Before each DNS frame is dispatched, every
/// datagram that had already arrived at the collector by that frame's
/// timestamp is decoded and dispatched, so records meet the resolver state
/// a live collector would have had — the property the tag-parity
/// differential test asserts. Datagrams arriving after the last DNS frame
/// flush at the end.
class ExportStreamSource final : public FlowSource {
 public:
  /// `stream_path` is a DNHX file or "-" (stdin); `dns_pcap` may be empty
  /// (records are then ingested without DNS, all flows untagged).
  ExportStreamSource(std::string stream_path, std::string dns_pcap,
                     flowexport::DecoderConfig decoder = {})
      : stream_path_{std::move(stream_path)},
        dns_pcap_{std::move(dns_pcap)},
        decoder_config_{decoder} {}

  bool run(ShardedAnalyzer& analyzer) override;

  /// Typed decode accounting (parse errors per kind, template events).
  const flowexport::ExportDecoderStats& decoder_stats() const noexcept {
    return decoder_stats_;
  }
  /// DNHX container damage survived (truncated tail, oversize record).
  const flowexport::StreamCorruption& stream_corruption() const noexcept {
    return stream_corruption_;
  }
  std::uint64_t datagrams() const noexcept { return datagrams_; }

 private:
  std::string stream_path_;
  std::string dns_pcap_;
  flowexport::DecoderConfig decoder_config_;
  flowexport::ExportDecoderStats decoder_stats_;
  flowexport::StreamCorruption stream_corruption_;
  std::uint64_t datagrams_ = 0;
};

}  // namespace dnh::pipeline

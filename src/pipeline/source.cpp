#include "pipeline/source.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/flight.hpp"
#include "pcap/pcapng.hpp"

namespace dnh::pipeline {

bool PcapFileSource::run(ShardedAnalyzer& analyzer) {
  obs::trace_event(obs::TraceStage::kSource, obs::TraceKind::kSourceOpen);
  const bool ok = analyzer.process_pcap(path_);
  if (!ok) error_ = analyzer.error();
  obs::trace_event(obs::TraceStage::kSource, obs::TraceKind::kSourceDone,
                   obs::kNoSeq, obs::kNoShard, ok ? 1 : 0);
  return ok;
}

std::vector<std::string> CaptureDirSource::list_captures(
    const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator{dir, ec}) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".pcap" || ext == ".pcapng" || ext == ".cap")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool CaptureDirSource::run(ShardedAnalyzer& analyzer) {
  const std::vector<std::string> files = list_captures(dir_);
  if (files.empty()) {
    error_ = "no capture files (*.pcap, *.pcapng, *.cap) in " + dir_;
    return false;
  }
  for (const std::string& file : files) {
    // arg = ordinal within the rotation sequence, so the trace shows
    // which capture file the pipeline was inside when something froze.
    obs::trace_event(obs::TraceStage::kSource, obs::TraceKind::kSourceOpen,
                     obs::kNoSeq, obs::kNoShard, files_replayed_);
    if (!analyzer.process_pcap(file)) {
      error_ = file + ": " + analyzer.error();
      return false;
    }
    ++files_replayed_;
  }
  obs::trace_event(obs::TraceStage::kSource, obs::TraceKind::kSourceDone,
                   obs::kNoSeq, obs::kNoShard, files_replayed_);
  return true;
}

bool ExportStreamSource::run(ShardedAnalyzer& analyzer) {
  flowexport::DatagramReader reader;
  if (!reader.open(stream_path_)) {
    error_ = reader.error();
    return false;
  }
  obs::trace_event(obs::TraceStage::kSource, obs::TraceKind::kSourceOpen);
  flowexport::ExportDecoder decoder{decoder_config_};
  flowexport::Datagram held;
  bool have_held = reader.next(held);
  std::vector<flowexport::ExportRecord> records;

  // Dispatches every datagram that had arrived by `upto` (all of them when
  // `drain` is set). Decode failures are typed degradation, not aborts:
  // whatever records the decoder salvaged are dispatched, the error lands
  // in the per-kind stats, and the replay continues.
  const auto pump = [&](util::Timestamp upto, bool drain) {
    while (have_held && (drain || held.arrival <= upto)) {
      records.clear();
      decoder.on_datagram(
          net::BytesView{held.payload.data(), held.payload.size()}, records);
      for (const auto& record : records)
        analyzer.on_export_record(record, held.arrival);
      have_held = reader.next(held);
    }
  };

  bool ok = true;
  if (!dns_pcap_.empty()) {
    pcap::CaptureReadOptions options;
    options.resync = analyzer.config().sniffer.resync_capture;
    pcap::CaptureReadReport report;
    ok = pcap::read_any_capture(
        dns_pcap_,
        [&](const pcap::Frame& frame) {
          pump(frame.timestamp, false);
          analyzer.on_frame(frame.data, frame.timestamp);
        },
        options, report);
    analyzer.note_capture_corruption(report.corruption);
    if (!report.error.empty()) error_ = std::move(report.error);
  }
  pump(util::Timestamp{}, true);

  decoder_stats_ = decoder.stats();
  stream_corruption_ = reader.corruption();
  datagrams_ = reader.datagrams_read();
  obs::trace_event(obs::TraceStage::kSource, obs::TraceKind::kSourceDone,
                   obs::kNoSeq, obs::kNoShard, datagrams_);
  if (!reader.error().empty() && error_.empty()) error_ = reader.error();
  return ok;
}

}  // namespace dnh::pipeline

#include "packet/decode.hpp"

#include <algorithm>

namespace dnh::packet {

std::uint16_t DecodedPacket::src_port() const {
  if (is_tcp()) return tcp().src_port;
  if (is_udp()) return udp().src_port;
  return 0;
}

std::uint16_t DecodedPacket::dst_port() const {
  if (is_tcp()) return tcp().dst_port;
  if (is_udp()) return udp().dst_port;
  return 0;
}

std::optional<DecodedPacket> decode_frame(net::BytesView frame,
                                          util::Timestamp ts) {
  DecodeFailure failure = DecodeFailure::kNone;
  return decode_frame(frame, ts, failure);
}

std::optional<DecodedPacket> decode_frame(net::BytesView frame,
                                          util::Timestamp ts,
                                          DecodeFailure& failure) {
  failure = DecodeFailure::kNone;
  net::ByteReader r{frame};
  DecodedPacket pkt;
  pkt.timestamp = ts;

  const auto eth = EthernetHeader::parse(r);
  if (!eth) {
    failure = DecodeFailure::kTruncatedL2;
    return std::nullopt;
  }
  pkt.eth = *eth;

  // Strip 802.1Q / 802.1ad VLAN tags (captures at ISP PoPs usually carry
  // at least one): each tag is 2 bytes of TCI + the real EtherType.
  int vlan_tags = 0;
  while ((pkt.eth.ether_type == 0x8100 || pkt.eth.ether_type == 0x88a8) &&
         vlan_tags < 4) {
    r.skip(2);  // priority/DEI/VLAN-id
    pkt.eth.ether_type = r.read_u16();
    if (!r.ok()) {
      failure = DecodeFailure::kTruncatedL2;
      return std::nullopt;
    }
    ++vlan_tags;
  }

  std::uint8_t l4_proto = 0;
  std::uint32_t ip_payload_len = 0;
  if (pkt.eth.ether_type == kEtherTypeIpv4) {
    const auto ip4 = Ipv4Header::parse(r);
    if (!ip4) {
      failure = DecodeFailure::kBadIpHeader;
      return std::nullopt;
    }
    l4_proto = ip4->protocol;
    ip_payload_len = ip4->payload_length();
    pkt.ip = *ip4;
  } else if (pkt.eth.ether_type == kEtherTypeIpv6) {
    const auto ip6 = Ipv6Header::parse(r);
    if (!ip6) {
      failure = DecodeFailure::kBadIpHeader;
      return std::nullopt;
    }
    l4_proto = ip6->next_header;
    ip_payload_len = ip6->payload_length;
    pkt.ip = *ip6;
  } else {
    failure = DecodeFailure::kUnsupported;
    return std::nullopt;  // ARP etc: not traffic we model
  }

  std::uint32_t l4_header_len = 0;
  if (l4_proto == kProtoTcp) {
    const auto tcp = TcpHeader::parse(r);
    if (!tcp) {
      failure = DecodeFailure::kBadL4Header;
      return std::nullopt;
    }
    l4_header_len = tcp->header_length;
    pkt.l4 = *tcp;
  } else if (l4_proto == kProtoUdp) {
    const auto udp = UdpHeader::parse(r);
    if (!udp) {
      failure = DecodeFailure::kBadL4Header;
      return std::nullopt;
    }
    l4_header_len = 8;
    // UDP carries its own length; prefer it when consistent.
    if (udp->length >= 8 && udp->length <= ip_payload_len)
      ip_payload_len = udp->length;
    pkt.l4 = *udp;
  } else {
    failure = DecodeFailure::kUnsupported;
    return std::nullopt;  // ICMP etc: ignored by the flow sniffer
  }

  pkt.wire_payload_length =
      ip_payload_len >= l4_header_len ? ip_payload_len - l4_header_len : 0;
  const std::size_t captured =
      std::min<std::size_t>(pkt.wire_payload_length, r.remaining());
  pkt.payload = r.read_bytes(captured);
  return pkt;
}

}  // namespace dnh::packet

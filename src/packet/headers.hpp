// Link/network/transport header codecs (Ethernet II, IPv4, IPv6, TCP, UDP).
//
// Each header type offers `parse(ByteReader&)` returning nullopt on
// malformed/truncated input and `serialize(ByteWriter&)` producing wire
// bytes. Parsers consume exactly the header (including IPv4/TCP options) so
// the caller's reader is positioned at the start of the next layer.
#pragma once

#include <cstdint>
#include <optional>

#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace dnh::packet {

/// EtherType values we understand.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeIpv6 = 0x86dd;

/// IP protocol numbers.
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

/// TCP flag bits (in the order of the wire flags byte).
namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

struct EthernetHeader {
  net::MacAddress dst;
  net::MacAddress src;
  std::uint16_t ether_type = 0;

  static std::optional<EthernetHeader> parse(net::ByteReader& r);
  void serialize(net::ByteWriter& w) const;
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  ///< header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  ///< as read; recomputed by serialize
  net::Ipv4Address src;
  net::Ipv4Address dst;
  std::uint8_t header_length = 20;  ///< bytes, 20..60

  /// Parses the header and any options; nullopt if IHL/total length are
  /// inconsistent or the buffer is short.
  static std::optional<Ipv4Header> parse(net::ByteReader& r);

  /// Serializes a 20-byte (optionless) header with a correct checksum.
  void serialize(net::ByteWriter& w) const;

  std::uint16_t payload_length() const noexcept {
    return total_length >= header_length
               ? static_cast<std::uint16_t>(total_length - header_length)
               : 0;
  }
};

struct Ipv6Header {
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  net::Ipv6Address src;
  net::Ipv6Address dst;

  static std::optional<Ipv6Header> parse(net::ByteReader& r);
  void serialize(net::ByteWriter& w) const;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload

  static std::optional<UdpHeader> parse(net::ByteReader& r);
  /// Serializes with `payload_len` and a zero checksum (valid for IPv4).
  void serialize(net::ByteWriter& w, std::size_t payload_len) const;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint8_t header_length = 20;  ///< bytes incl. options, 20..60

  static std::optional<TcpHeader> parse(net::ByteReader& r);
  /// Serializes a 20-byte (optionless) header with a zero checksum; the
  /// frame builder patches the real checksum afterwards.
  void serialize(net::ByteWriter& w) const;

  bool syn() const noexcept { return flags & tcpflags::kSyn; }
  bool ack_flag() const noexcept { return flags & tcpflags::kAck; }
  bool fin() const noexcept { return flags & tcpflags::kFin; }
  bool rst() const noexcept { return flags & tcpflags::kRst; }
};

}  // namespace dnh::packet

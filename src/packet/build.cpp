#include "packet/build.hpp"

#include <algorithm>
#include <cassert>

#include "net/checksum.hpp"

namespace dnh::packet {
namespace {

void write_eth(net::ByteWriter& w, const FrameSpec& spec) {
  EthernetHeader eth;
  eth.dst = spec.dst_mac;
  eth.src = spec.src_mac;
  eth.ether_type = kEtherTypeIpv4;
  eth.serialize(w);
}

void write_ip(net::ByteWriter& w, const FrameSpec& spec, std::uint8_t proto,
              std::size_t l4_total) {
  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(20 + l4_total);
  ip.identification = spec.ip_id;
  ip.ttl = spec.ttl;
  ip.protocol = proto;
  ip.src = spec.src_ip;
  ip.dst = spec.dst_ip;
  ip.serialize(w);
}

}  // namespace

net::Bytes build_udp_frame(const FrameSpec& spec, net::BytesView payload) {
  net::ByteWriter w;
  write_eth(w, spec);
  write_ip(w, spec, kProtoUdp, 8 + payload.size());

  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  udp.serialize(w, payload.size());
  w.write_bytes(payload);
  return w.take();
}

net::Bytes build_tcp_frame(const FrameSpec& spec, std::uint8_t flags,
                           std::uint32_t seq, std::uint32_t ack,
                           net::BytesView captured_payload,
                           std::uint32_t wire_payload_length) {
  const std::uint32_t wire_len = std::max<std::uint32_t>(
      wire_payload_length,
      static_cast<std::uint32_t>(captured_payload.size()));

  net::ByteWriter w;
  write_eth(w, spec);
  write_ip(w, spec, kProtoTcp, 20 + wire_len);

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  const std::size_t tcp_start = w.size();
  tcp.serialize(w);
  w.write_bytes(captured_payload);

  // Checksum over what we actually emit (a short-snaplen capture has
  // incorrect checksums for truncated frames too; decoders don't verify).
  const net::BytesView segment{w.data().data() + tcp_start,
                               w.size() - tcp_start};
  const std::uint16_t csum =
      net::l4_checksum_v4(spec.src_ip, spec.dst_ip, kProtoTcp, segment);
  w.patch_u16(tcp_start + 16, csum);
  return w.take();
}

pcap::Frame make_pcap_frame(util::Timestamp ts, net::Bytes frame_bytes,
                            std::uint32_t wire_extra) {
  pcap::Frame f;
  f.timestamp = ts;
  f.original_length =
      static_cast<std::uint32_t>(frame_bytes.size()) + wire_extra;
  f.data = std::move(frame_bytes);
  return f;
}

}  // namespace dnh::packet

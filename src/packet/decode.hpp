// Full-frame decoder: Ethernet -> IPv4/IPv6 -> TCP/UDP -> payload view.
#pragma once

#include <optional>
#include <variant>

#include "net/bytes.hpp"
#include "packet/headers.hpp"
#include "util/time.hpp"

namespace dnh::packet {

/// A decoded frame. `payload` is a view into the frame buffer passed to
/// `decode_frame` and is only valid while that buffer lives — the sniffer
/// processes one frame at a time, copying anything it needs to keep.
struct DecodedPacket {
  util::Timestamp timestamp;
  EthernetHeader eth;
  std::variant<Ipv4Header, Ipv6Header> ip;
  std::variant<std::monostate, TcpHeader, UdpHeader> l4;
  net::BytesView payload;  ///< L4 payload bytes actually captured
  std::uint32_t wire_payload_length = 0;  ///< L4 payload bytes on the wire

  bool is_ipv4() const noexcept {
    return std::holds_alternative<Ipv4Header>(ip);
  }
  const Ipv4Header& ipv4() const { return std::get<Ipv4Header>(ip); }

  bool is_tcp() const noexcept {
    return std::holds_alternative<TcpHeader>(l4);
  }
  bool is_udp() const noexcept {
    return std::holds_alternative<UdpHeader>(l4);
  }
  const TcpHeader& tcp() const { return std::get<TcpHeader>(l4); }
  const UdpHeader& udp() const { return std::get<UdpHeader>(l4); }

  /// Source/destination addresses for the IPv4 case (our generator emits
  /// only IPv4; the v6 decode path exists for live-capture completeness).
  net::Ipv4Address src_v4() const { return ipv4().src; }
  net::Ipv4Address dst_v4() const { return ipv4().dst; }

  std::uint16_t src_port() const;
  std::uint16_t dst_port() const;
};

/// Why a frame failed to decode. "Unsupported" covers well-formed traffic
/// we deliberately ignore (ARP, ICMP, non-Ethernet-II); the other values
/// are genuine malformation, which degraded-mode accounting tracks
/// separately from benign noise.
enum class DecodeFailure {
  kNone = 0,
  kTruncatedL2,   ///< frame ends inside the Ethernet/VLAN headers
  kBadIpHeader,   ///< IPv4/IPv6 header truncated or inconsistent
  kBadL4Header,   ///< TCP/UDP header truncated or inconsistent
  kUnsupported,   ///< non-IP ethertype or non-TCP/UDP protocol
};

/// Decodes an Ethernet frame captured at `ts`. Returns nullopt for frames
/// that are not IPv4/IPv6 over Ethernet II carrying TCP or UDP, and for any
/// truncated/malformed header. The decoder is tolerant of frames captured
/// with a short snaplen: a payload shorter than the IP length field yields a
/// partial `payload` view with `wire_payload_length` reporting the true size.
std::optional<DecodedPacket> decode_frame(net::BytesView frame,
                                          util::Timestamp ts);

/// As above, classifying any failure into `failure` (kNone on success) so
/// callers can separate hostile/corrupt frames from merely-ignored ones.
std::optional<DecodedPacket> decode_frame(net::BytesView frame,
                                          util::Timestamp ts,
                                          DecodeFailure& failure);

}  // namespace dnh::packet

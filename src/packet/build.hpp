// Frame builders used by the trace generator to emit wire-true packets.
#pragma once

#include <cstdint>

#include "net/bytes.hpp"
#include "net/ip.hpp"
#include "packet/headers.hpp"
#include "pcap/pcap.hpp"
#include "util/time.hpp"

namespace dnh::packet {

/// Parameters common to one emitted IPv4 frame.
struct FrameSpec {
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  net::Ipv4Address src_ip;
  net::Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
};

/// Builds a UDP/IPv4/Ethernet frame carrying `payload`.
net::Bytes build_udp_frame(const FrameSpec& spec, net::BytesView payload);

/// Builds a TCP/IPv4/Ethernet frame.
///
/// `captured_payload` is what actually lands in the frame; if
/// `wire_payload_length` exceeds its size, the IP total-length field claims
/// the larger size — exactly what a capture with a short snaplen produces.
/// The flow meter counts wire bytes, so bulk data can be represented
/// compactly without distorting volume statistics.
net::Bytes build_tcp_frame(const FrameSpec& spec, std::uint8_t flags,
                           std::uint32_t seq, std::uint32_t ack,
                           net::BytesView captured_payload,
                           std::uint32_t wire_payload_length = 0);

/// Wraps a built frame and timestamp as a pcap Frame (original_length set
/// to the wire-true size when the capture is truncated).
pcap::Frame make_pcap_frame(util::Timestamp ts, net::Bytes frame_bytes,
                            std::uint32_t wire_extra = 0);

}  // namespace dnh::packet

#include "packet/headers.hpp"

#include <cstring>

#include "net/checksum.hpp"

namespace dnh::packet {

std::optional<EthernetHeader> EthernetHeader::parse(net::ByteReader& r) {
  EthernetHeader h;
  const net::BytesView dst = r.read_bytes(6);
  const net::BytesView src = r.read_bytes(6);
  h.ether_type = r.read_u16();
  if (!r.ok()) return std::nullopt;
  std::array<std::uint8_t, 6> mac{};
  std::memcpy(mac.data(), dst.data(), 6);
  h.dst = net::MacAddress{mac};
  std::memcpy(mac.data(), src.data(), 6);
  h.src = net::MacAddress{mac};
  return h;
}

void EthernetHeader::serialize(net::ByteWriter& w) const {
  w.write_bytes(net::BytesView{dst.bytes()});
  w.write_bytes(net::BytesView{src.bytes()});
  w.write_u16(ether_type);
}

std::optional<Ipv4Header> Ipv4Header::parse(net::ByteReader& r) {
  Ipv4Header h;
  const std::uint8_t ver_ihl = r.read_u8();
  if (!r.ok() || (ver_ihl >> 4) != 4) return std::nullopt;
  h.header_length = static_cast<std::uint8_t>((ver_ihl & 0x0f) * 4);
  if (h.header_length < 20) return std::nullopt;
  h.dscp = r.read_u8();
  h.total_length = r.read_u16();
  h.identification = r.read_u16();
  r.skip(2);  // flags + fragment offset (we never emit fragments)
  h.ttl = r.read_u8();
  h.protocol = r.read_u8();
  h.checksum = r.read_u16();
  h.src = r.read_ipv4();
  h.dst = r.read_ipv4();
  if (h.header_length > 20) r.skip(h.header_length - 20u);
  if (!r.ok()) return std::nullopt;
  if (h.total_length < h.header_length) return std::nullopt;
  return h;
}

void Ipv4Header::serialize(net::ByteWriter& w) const {
  const std::size_t start = w.size();
  w.write_u8(0x45);  // version 4, IHL 5
  w.write_u8(dscp);
  w.write_u16(total_length);
  w.write_u16(identification);
  w.write_u16(0x4000);  // DF, no fragment offset
  w.write_u8(ttl);
  w.write_u8(protocol);
  w.write_u16(0);  // checksum placeholder
  w.write_ipv4(src);
  w.write_ipv4(dst);
  const net::BytesView hdr{w.data().data() + start, 20};
  w.patch_u16(start + 10, net::internet_checksum(hdr));
}

std::optional<Ipv6Header> Ipv6Header::parse(net::ByteReader& r) {
  Ipv6Header h;
  const std::uint32_t vtc_flow = r.read_u32();
  if (!r.ok() || (vtc_flow >> 28) != 6) return std::nullopt;
  h.payload_length = r.read_u16();
  h.next_header = r.read_u8();
  h.hop_limit = r.read_u8();
  h.src = r.read_ipv6();
  h.dst = r.read_ipv6();
  if (!r.ok()) return std::nullopt;
  return h;
}

void Ipv6Header::serialize(net::ByteWriter& w) const {
  w.write_u32(0x60000000);
  w.write_u16(payload_length);
  w.write_u8(next_header);
  w.write_u8(hop_limit);
  w.write_ipv6(src);
  w.write_ipv6(dst);
}

std::optional<UdpHeader> UdpHeader::parse(net::ByteReader& r) {
  UdpHeader h;
  h.src_port = r.read_u16();
  h.dst_port = r.read_u16();
  h.length = r.read_u16();
  r.skip(2);  // checksum
  if (!r.ok() || h.length < 8) return std::nullopt;
  return h;
}

void UdpHeader::serialize(net::ByteWriter& w, std::size_t payload_len) const {
  w.write_u16(src_port);
  w.write_u16(dst_port);
  w.write_u16(static_cast<std::uint16_t>(8 + payload_len));
  w.write_u16(0);  // checksum optional over IPv4
}

std::optional<TcpHeader> TcpHeader::parse(net::ByteReader& r) {
  TcpHeader h;
  h.src_port = r.read_u16();
  h.dst_port = r.read_u16();
  h.seq = r.read_u32();
  h.ack = r.read_u32();
  const std::uint8_t offset_byte = r.read_u8();
  h.header_length = static_cast<std::uint8_t>((offset_byte >> 4) * 4);
  h.flags = r.read_u8();
  h.window = r.read_u16();
  r.skip(4);  // checksum + urgent pointer
  if (h.header_length < 20) return std::nullopt;
  if (h.header_length > 20) r.skip(h.header_length - 20u);
  if (!r.ok()) return std::nullopt;
  return h;
}

void TcpHeader::serialize(net::ByteWriter& w) const {
  w.write_u16(src_port);
  w.write_u16(dst_port);
  w.write_u32(seq);
  w.write_u32(ack);
  w.write_u8(0x50);  // data offset 5 words
  w.write_u8(flags);
  w.write_u16(window);
  w.write_u16(0);  // checksum placeholder (patched by the frame builder)
  w.write_u16(0);  // urgent pointer
}

}  // namespace dnh::packet

#include "core/live.hpp"

namespace dnh::core {

LiveAnalyzer::LiveAnalyzer(LiveConfig config, WindowSink sink)
    : config_{config}, sink_{std::move(sink)} {
  sniffer_ = std::make_unique<Sniffer>(config_.sniffer);
}

void LiveAnalyzer::set_flow_start_hook(Sniffer::FlowStartHook hook) {
  sniffer_->set_flow_start_hook(std::move(hook));
}

void LiveAnalyzer::rotate(util::Timestamp boundary) {
  AnalysisWindow window;
  window.start = window_start_;
  window.end = boundary;
  window.db = sniffer_->take_database();
  window.dns_log = sniffer_->take_dns_log();
  window_start_ = boundary;
  ++windows_;
  if (sink_) sink_(std::move(window));
}

void LiveAnalyzer::on_frame(net::BytesView frame, util::Timestamp ts) {
  if (!started_) {
    // Align the first window to a clean multiple of the window length.
    const std::int64_t width = config_.window.total_micros();
    window_start_ = util::Timestamp::from_micros(
        ts.micros_since_epoch() / width * width);
    started_ = true;
  }
  // Deliver every completed window the clock has passed. Flows still open
  // in the flow table stay live and land in the window they complete in.
  while (ts >= window_start_ + config_.window)
    rotate(window_start_ + config_.window);
  sniffer_->on_frame(frame, ts);
}

void LiveAnalyzer::finish() {
  sniffer_->finish();
  if (started_) rotate(window_start_ + config_.window);
}

}  // namespace dnh::core

#include "core/live.hpp"

namespace dnh::core {

LiveAnalyzer::LiveAnalyzer(LiveConfig config, WindowSink sink)
    : config_{config}, sink_{std::move(sink)} {
  sniffer_ = std::make_unique<Sniffer>(config_.sniffer);
}

void LiveAnalyzer::set_flow_start_hook(Sniffer::FlowStartHook hook) {
  sniffer_->set_flow_start_hook(std::move(hook));
}

void LiveAnalyzer::rotate(util::Timestamp boundary) {
  // The database and DNS-log slice are MOVED out of the sniffer and moved
  // again into the sink — rotation never copies flow or event payloads (a
  // window can hold millions of flows). With no sink attached the window
  // is still taken (and dropped) so the next window starts empty and
  // windows_delivered() keeps counting rotations.
  AnalysisWindow window{window_start_, boundary, sniffer_->take_database(),
                        sniffer_->take_dns_log()};
  window_start_ = boundary;
  ++windows_;
  if (sink_) sink_(std::move(window));
}

void LiveAnalyzer::on_frame(net::BytesView frame, util::Timestamp ts) {
  if (!started_) {
    // Align the first window to a clean multiple of the window length.
    const std::int64_t width = config_.window.total_micros();
    window_start_ = util::Timestamp::from_micros(
        ts.micros_since_epoch() / width * width);
    started_ = true;
  }
  // Deliver every completed window the clock has passed. Flows still open
  // in the flow table stay live and land in the window they complete in.
  while (ts >= window_start_ + config_.window)
    rotate(window_start_ + config_.window);
  sniffer_->on_frame(frame, ts);
}

void LiveAnalyzer::finish() {
  sniffer_->finish();
  if (started_) rotate(window_start_ + config_.window);
}

}  // namespace dnh::core

#include "core/sniffer.hpp"

#include <algorithm>
#include <cstring>

#include "baseline/cert_inspection.hpp"
#include "baseline/dpi.hpp"
#include "dns/message.hpp"
#include "obs/flight.hpp"
#include "dns/wire_scan.hpp"
#include "packet/decode.hpp"
#include "pcap/pcapng.hpp"

namespace dnh::core {

namespace {

// Process-wide hot-path counters (one naming scheme for what the ad-hoc
// SnifferStats/DegradationStats fields record; the structs remain the
// merge/test plumbing, the registry is the live export surface — see
// docs/observability.md for the field-to-metric mapping). Handles resolve
// once; each bump is a thread-local relaxed increment.
struct SnifferMetrics {
  obs::Registry& r = obs::Registry::global();
  obs::Counter frames = r.counter("dnh_frames_total");
  obs::Counter ts_regressions = r.counter("dnh_timestamp_regressions_total");
  obs::Counter decode_truncated =
      r.counter("dnh_decode_errors_total{kind=truncated}");
  obs::Counter decode_bad_ip =
      r.counter("dnh_decode_errors_total{kind=bad_ip}");
  obs::Counter decode_bad_l4 =
      r.counter("dnh_decode_errors_total{kind=bad_l4}");
  obs::Counter decode_unsupported =
      r.counter("dnh_decode_errors_total{kind=unsupported}");
  obs::Counter dns_responses = r.counter("dnh_dns_responses_total");
  obs::Counter dns_queries = r.counter("dnh_dns_queries_total");
  obs::Counter dns_tcp_messages = r.counter("dnh_dns_tcp_messages_total");
  obs::Counter dns_err_truncated =
      r.counter("dnh_dns_parse_errors_total{kind=truncated}");
  obs::Counter dns_err_count_lie =
      r.counter("dnh_dns_parse_errors_total{kind=count_lie}");
  obs::Counter dns_err_pointer_loop =
      r.counter("dnh_dns_parse_errors_total{kind=pointer_loop}");
  obs::Counter dns_err_pointer_range =
      r.counter("dnh_dns_parse_errors_total{kind=pointer_out_of_range}");
  obs::Counter dns_err_bad_name =
      r.counter("dnh_dns_parse_errors_total{kind=bad_name}");
  obs::Counter dns_err_not_response =
      r.counter("dnh_dns_parse_errors_total{kind=not_a_response}");
  obs::Counter dns_log_evictions = r.counter("dnh_dns_log_evictions_total");
  obs::Counter tcp_dns_overflows = r.counter("dnh_tcp_dns_overflows_total");
  obs::Counter tcp_buffer_evictions =
      r.counter("dnh_tcp_dns_buffer_evictions_total");
  obs::Counter flows_exported = r.counter("dnh_flows_exported_total");
  obs::Counter flows_tagged_start =
      r.counter("dnh_flows_tagged_start_total");
  obs::Counter flows_tagged_late = r.counter("dnh_flows_tagged_late_total");
  obs::Counter export_records_ingested =
      r.counter("dnh_flowexport_records_ingested_total");
  obs::Histogram decode_ns = r.histogram("dnh_stage_decode_ns");
  obs::Histogram dns_parse_ns = r.histogram("dnh_stage_dns_parse_ns");
};

SnifferMetrics& metrics() {
  static SnifferMetrics m;
  return m;
}

std::string shard_gauge_name(const char* base, std::size_t shard) {
  return std::string{base} + "{shard=" + std::to_string(shard) + "}";
}

}  // namespace

Sniffer::Sniffer(SnifferConfig config)
    : config_{config},
      domains_{std::make_shared<DomainTable>()},
      resolver_{config.clist_size, domains_},
      table_{config.table},
      database_{domains_} {
  // Pre-size the per-flow side tables from config so steady state never
  // rehashes: pending tags track live flows; the TCP-DNS buffer table is
  // hard-capped at max_tcp_dns_buffers.
  pending_tags_.reserve(config_.table.expected_flows);
  tcp_dns_buffers_.reserve(
      std::min<std::size_t>(config_.max_tcp_dns_buffers, 1 << 16));
  if (config_.dns_only) record_flows_.reserve(config_.table.expected_flows);
  table_.set_flow_start_observer(
      [this](const flow::FlowRecord& flow) { on_flow_start(flow); });
  table_.set_exporter(
      [this](flow::FlowRecord&& flow) { on_flow_export(std::move(flow)); });
  obs::Registry& registry = obs::Registry::global();
  const std::size_t shard = config_.metrics_shard;
  resolver_cache_gauge_ =
      registry.gauge(shard_gauge_name("dnh_resolver_cache_size", shard));
  resolver_clients_gauge_ =
      registry.gauge(shard_gauge_name("dnh_resolver_clients", shard));
  flow_table_gauge_ =
      registry.gauge(shard_gauge_name("dnh_flow_table_live", shard));
  dns_log_gauge_ =
      registry.gauge(shard_gauge_name("dnh_dns_log_size", shard));
  tcp_buffers_gauge_ =
      registry.gauge(shard_gauge_name("dnh_tcp_dns_buffers", shard));
  pending_tags_gauge_ =
      registry.gauge(shard_gauge_name("dnh_pending_tags", shard));
  domain_table_bytes_gauge_ =
      registry.gauge(shard_gauge_name("dnh_domain_table_bytes", shard));
  domain_table_size_gauge_ =
      registry.gauge(shard_gauge_name("dnh_domain_table_size", shard));
}

void Sniffer::publish_gauges() {
  // Clist occupancy: fills monotonically, then stays full (FIFO recycle).
  const std::uint64_t inserted = resolver_.stats().inserts;
  const std::uint64_t capacity = resolver_.capacity();
  resolver_cache_gauge_.set(
      static_cast<std::int64_t>(inserted < capacity ? inserted : capacity));
  resolver_clients_gauge_.set(
      static_cast<std::int64_t>(resolver_.client_count()));
  flow_table_gauge_.set(static_cast<std::int64_t>(table_.live_flows()));
  dns_log_gauge_.set(static_cast<std::int64_t>(dns_log_.size()));
  tcp_buffers_gauge_.set(
      static_cast<std::int64_t>(tcp_dns_buffers_.size()));
  pending_tags_gauge_.set(static_cast<std::int64_t>(pending_tags_.size()));
  domain_table_bytes_gauge_.set(
      static_cast<std::int64_t>(domains_->arena_bytes()));
  domain_table_size_gauge_.set(static_cast<std::int64_t>(domains_->size()));
  // Piggybacked on the gauge cadence (every 4096 frames): a cheap "this
  // shard was sniffing at T" marker for stall forensics.
  obs::trace_event(obs::TraceStage::kShard, obs::TraceKind::kSniffProgress,
                   obs::kNoSeq, static_cast<unsigned>(config_.metrics_shard),
                   stats_.frames);
}

void Sniffer::on_frame(net::BytesView frame, util::Timestamp ts) {
  SnifferMetrics& m = metrics();
  ++stats_.frames;
  m.frames.inc();
  if ((stats_.frames & (kGaugePublishInterval - 1)) == 0) publish_gauges();
  // Clock sanity: capture replay and fault injection can both deliver
  // frames out of order; the flow table tolerates it, but it is a
  // degradation signal worth surfacing.
  if (have_last_frame_ts_ && ts < last_frame_ts_) {
    ++stats_.degradation.timestamp_regressions;
    m.ts_regressions.inc();
  } else {
    last_frame_ts_ = ts;
  }
  have_last_frame_ts_ = true;

  packet::DecodeFailure failure = packet::DecodeFailure::kNone;
  obs::SpanTimer decode_span{m.decode_ns, decode_gate_};
  const auto pkt = packet::decode_frame(frame, ts, failure);
  decode_span.stop();
  if (!pkt) {
    ++stats_.decode_failures;
    switch (failure) {
      case packet::DecodeFailure::kTruncatedL2:
        ++stats_.degradation.frames_truncated;
        m.decode_truncated.inc();
        break;
      case packet::DecodeFailure::kBadIpHeader:
        ++stats_.degradation.bad_ip_headers;
        m.decode_bad_ip.inc();
        break;
      case packet::DecodeFailure::kBadL4Header:
        ++stats_.degradation.bad_l4_headers;
        m.decode_bad_l4.inc();
        break;
      case packet::DecodeFailure::kUnsupported:
      case packet::DecodeFailure::kNone:
        ++stats_.degradation.unsupported_frames;
        m.decode_unsupported.inc();
        break;
    }
    return;
  }
  if (!pkt->is_ipv4()) return;  // the generator emits IPv4 only

  if (pkt->is_udp()) {
    if (pkt->udp().src_port == dns::kDnsPort) {
      on_dns_packet(*pkt);
      return;
    }
    if (pkt->udp().dst_port == dns::kDnsPort) {
      ++stats_.dns_queries;  // queries carry no answers; nothing to store
      m.dns_queries.inc();
      return;
    }
  }
  if (pkt->is_tcp() && (pkt->tcp().src_port == dns::kDnsPort ||
                        pkt->tcp().dst_port == dns::kDnsPort)) {
    // DNS over TCP (truncated-response retries): responses are labeled
    // input, not traffic to tag.
    if (pkt->tcp().src_port == dns::kDnsPort) {
      on_tcp_dns_segment(*pkt);
    } else {
      ++stats_.dns_queries;
      m.dns_queries.inc();
    }
    return;
  }
  if (config_.dns_only) return;  // flows arrive via on_export_record
  table_.on_packet(*pkt);
}

// dnh-analyze: hot
void Sniffer::on_export_record(const flowexport::OrientedRecord& record,
                               util::Timestamp arrival) {
  // dnh-lint: hot
  ++stats_.export_records;
  metrics().export_records_ingested.inc();

  auto it = record_flows_.find(record.key);
  if (it != record_flows_.end() &&
      record.first > it->second.last_packet &&
      record.first - it->second.last_packet > config_.table.idle_timeout) {
    // Arrival-driven split, mirroring FlowTable: a record resuming an
    // expired 5-tuple starts a new flow, so flow boundaries depend only on
    // record timestamps, never on sweep cadence.
    flow::FlowRecord expired = std::move(it->second);
    record_flows_.erase(it);
    on_flow_export(std::move(expired));
    it = record_flows_.end();
  }
  if (it == record_flows_.end()) {
    flow::FlowRecord fresh;
    fresh.key = record.key;
    fresh.first_packet = record.first;
    fresh.last_packet = record.last;
    it = record_flows_.emplace(record.key, std::move(fresh)).first;
    // Start-tag parity with the packet path: resolver insertions are
    // stream-ordered, so the newest entry at-or-before the flow's first
    // packet is exactly what on_flow_start's lookup() saw at that instant
    // — even though the export record reaches us seconds later.
    std::string_view fqdn;
    if (const auto hit = resolver_.lookup_at_or_before(
            record.key.client_ip, record.key.server_ip, record.first)) {
      pending_tags_[record.key] =
          PendingTag{hit->fqdn_id, hit->response_time};
      fqdn = hit->fqdn;
    }
    if (flow_start_hook_) flow_start_hook_(it->second, fqdn);
  }

  flow::FlowRecord& flow = it->second;
  if (record.first < flow.first_packet) flow.first_packet = record.first;
  if (record.last > flow.last_packet) flow.last_packet = record.last;
  if (record.from_client) {
    flow.packets_c2s += record.packets;
    flow.bytes_c2s += record.bytes;
  } else {
    flow.packets_s2c += record.packets;
    flow.bytes_s2c += record.bytes;
  }
  if (record.key.transport == flow::Transport::kTcp) {
    if (record.tcp_flags & 0x02) flow.saw_syn = true;
    if (record.tcp_flags & 0x04) flow.saw_rst = true;
    if (record.tcp_flags & 0x01) {
      if (record.from_client)
        flow.saw_fin_client = true;
      else
        flow.saw_fin_server = true;
    }
  }

  if (stats_.export_records % config_.table.sweep_interval_packets == 0) {
    sweep_record_flows(arrival);
    publish_gauges();
  }
}

void Sniffer::sweep_record_flows(util::Timestamp now) {
  // Memory bound only: the export-time label is a cutoff query at the
  // flow's last packet, so flushing early or late cannot change it. Keys
  // flush in sorted order so database insertion order is deterministic
  // regardless of hash-map iteration order.
  std::vector<flow::FlowKey> idle;
  for (const auto& [key, flow] : record_flows_) {
    if (now > flow.last_packet &&
        now - flow.last_packet > config_.table.idle_timeout) {
      idle.push_back(key);
    }
  }
  std::sort(idle.begin(), idle.end());
  for (const auto& key : idle) {
    auto it = record_flows_.find(key);
    flow::FlowRecord flow = std::move(it->second);
    record_flows_.erase(it);
    on_flow_export(std::move(flow));
  }
}

void Sniffer::flush_record_flows() {
  std::vector<flow::FlowKey> keys;
  keys.reserve(record_flows_.size());
  for (const auto& [key, flow] : record_flows_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const auto& key : keys) {
    auto it = record_flows_.find(key);
    flow::FlowRecord flow = std::move(it->second);
    record_flows_.erase(it);
    on_flow_export(std::move(flow));
  }
}

// dnh-analyze: hot
void Sniffer::handle_dns_message(net::BytesView wire,
                                 net::Ipv4Address client,
                                 util::Timestamp ts) {
  // dnh-lint: hot
  SnifferMetrics& m = metrics();
  dns::MessageParseError parse_error = dns::MessageParseError::kNone;
  obs::SpanTimer parse_span{m.dns_parse_ns, dns_gate_};
  bool parsed;
  if (config_.legacy_dns_decode) {
    // A/B reference path: full decode, then project the three facts the
    // sniffer needs into the same scratch the scanner fills, so the tail
    // below is shared and the two paths cannot drift in behaviour.
    // dnh-analyze: allow(alloc, legacy_dns_decode is the off-by-default
    // A/B reference path; only the scanner branch carries the
    // zero-allocation contract)
    const auto msg = dns::DnsMessage::decode(wire, parse_error);
    parsed = msg.has_value();
    if (msg) {
      dns_scratch_.is_response = msg->is_response;
      // dnh-lint: allow(hot-path-noalloc) -- the legacy decode branch is
      // the off-by-default reference path; only the scanner branch below
      // carries the zero-allocation contract.
      // dnh-analyze: allow(alloc, same off-by-default reference branch as
      // above)
      const std::string name = msg->canonical_query_name().to_string();
      if (name == ".") {
        dns_scratch_.name_len = 0;  // root/no-question sentinel
      } else {
        dns_scratch_.name_len =
            std::min(name.size(), dns_scratch_.name.size());
        std::memcpy(dns_scratch_.name.data(), name.data(),
                    dns_scratch_.name_len);
      }
      const auto servers = msg->answer_addresses();
      dns_scratch_.addresses.assign(servers.begin(), servers.end());
    }
  } else {
    parsed = dns::scan_response(wire, dns_scratch_, parse_error);
  }
  parse_span.stop();
  if (!parsed) {
    ++stats_.dns_parse_failures;
    switch (parse_error) {
      case dns::MessageParseError::kTruncated:
        ++stats_.degradation.dns_truncated;
        m.dns_err_truncated.inc();
        break;
      case dns::MessageParseError::kCountLie:
        ++stats_.degradation.dns_count_lies;
        m.dns_err_count_lie.inc();
        break;
      case dns::MessageParseError::kPointerLoop:
        ++stats_.degradation.dns_pointer_loops;
        m.dns_err_pointer_loop.inc();
        break;
      case dns::MessageParseError::kPointerOutOfRange:
        ++stats_.degradation.dns_pointer_out_of_range;
        m.dns_err_pointer_range.inc();
        break;
      case dns::MessageParseError::kBadName:
      case dns::MessageParseError::kNone:
        ++stats_.degradation.dns_bad_names;
        m.dns_err_bad_name.inc();
        break;
    }
    return;
  }
  if (!dns_scratch_.is_response) {
    // Well-formed but not a response on the response port: odd, not hostile.
    ++stats_.dns_parse_failures;
    m.dns_err_not_response.inc();
    return;
  }
  ++stats_.dns_responses;
  m.dns_responses.inc();
  if (dns_scratch_.name_len == 0)
    return;  // no question section: nothing to key on

  const DomainId fqdn = domains_->intern(dns_scratch_.name_view());
  resolver_.insert(client, fqdn, dns_scratch_.addresses, ts);
  if (config_.record_dns_log) {
    if (config_.max_dns_log > 0 && dns_log_.size() >= config_.max_dns_log) {
      // Halving eviction keeps amortized cost O(1) per event and retains
      // the recent half the delay analytics care most about.
      const std::size_t evict = dns_log_.size() / 2;
      dns_log_.erase(dns_log_.begin(),
                     dns_log_.begin() + static_cast<std::ptrdiff_t>(evict));
      stats_.degradation.dns_log_evictions += evict;
      m.dns_log_evictions.add(evict);
    }
    dns_log_.push_back(
        {ts, client, domains_->view(fqdn), dns_scratch_.addresses, fqdn});
  }
}

void Sniffer::on_dns_packet(const packet::DecodedPacket& pkt) {
  handle_dns_message(pkt.payload, pkt.dst_v4(), pkt.timestamp);
}

void Sniffer::on_tcp_dns_segment(const packet::DecodedPacket& pkt) {
  if (pkt.payload.empty()) return;  // handshake/teardown segments
  const net::Ipv4Address client = pkt.dst_v4();
  const std::uint64_t key =
      (std::uint64_t{client.value()} << 16) | pkt.dst_port();
  if (config_.max_tcp_dns_buffers > 0 &&
      tcp_dns_buffers_.size() >= config_.max_tcp_dns_buffers &&
      !tcp_dns_buffers_.count(key)) {
    // At capacity and this is a new connection: evict one buffer so an
    // adversary opening endless half-streams cannot grow state unboundedly.
    tcp_dns_buffers_.erase(tcp_dns_buffers_.begin());
    ++stats_.degradation.tcp_dns_buffer_evictions;
    metrics().tcp_buffer_evictions.inc();
  }
  net::Bytes& buffer = tcp_dns_buffers_[key];
  if (buffer.size() + pkt.payload.size() > 65536 + 2) {
    buffer.clear();  // runaway stream: drop and resync
    ++stats_.degradation.tcp_dns_overflows;
    metrics().tcp_dns_overflows.inc();
    return;
  }
  buffer.insert(buffer.end(), pkt.payload.begin(), pkt.payload.end());

  // Drain complete length-prefixed messages (RFC 1035 4.2.2).
  while (buffer.size() >= 2) {
    const std::size_t length =
        (std::size_t{buffer[0]} << 8) | buffer[1];
    if (buffer.size() < 2 + length) break;
    handle_dns_message(net::BytesView{buffer.data() + 2, length}, client,
                       pkt.timestamp);
    ++stats_.dns_tcp_messages;
    metrics().dns_tcp_messages.inc();
    buffer.erase(buffer.begin(), buffer.begin() + 2 + length);
  }
  if (buffer.empty()) tcp_dns_buffers_.erase(key);
}

void Sniffer::on_flow_start(const flow::FlowRecord& flow) {
  const auto hit = resolver_.lookup(flow.key.client_ip, flow.key.server_ip);
  if (hit) {
    pending_tags_[flow.key] = PendingTag{hit->fqdn_id, hit->response_time};
  }
  if (flow_start_hook_)
    flow_start_hook_(flow, hit ? hit->fqdn : std::string_view{});
}

void Sniffer::on_flow_export(flow::FlowRecord&& flow) {
  SnifferMetrics& m = metrics();
  ++stats_.flows_exported;
  m.flows_exported.inc();
  TaggedFlow tagged;
  tagged.key = flow.key;
  tagged.first_packet = flow.first_packet;
  tagged.last_packet = flow.last_packet;
  tagged.packets_c2s = flow.packets_c2s;
  tagged.packets_s2c = flow.packets_s2c;
  tagged.bytes_c2s = flow.bytes_c2s;
  tagged.bytes_s2c = flow.bytes_s2c;

  const auto pending = pending_tags_.find(flow.key);
  if (pending != pending_tags_.end()) {
    tagged.fqdn_id = pending->second.fqdn;
    tagged.fqdn = domains_->view(tagged.fqdn_id);
    tagged.dns_response_time = pending->second.response_time;
    tagged.tagged_at_start = true;
    ++stats_.flows_tagged_at_start;
    m.flows_tagged_start.inc();
    pending_tags_.erase(pending);
  } else {
    // Late retry: the response may have been sniffed after the first
    // packet (e.g. flow start raced the DNS answer). Only responses
    // observed during the flow's lifetime qualify — a response that
    // arrived after the flow's last packet cannot have named it, and
    // accepting it would make the label depend on WHEN the export fires
    // (sweep cadence), breaking the parallel pipeline's guarantee that
    // sharded and single-threaded runs label identically.
    if (const auto hit = resolver_.lookup_at_or_before(
            flow.key.client_ip, flow.key.server_ip, flow.last_packet)) {
      tagged.fqdn_id = hit->fqdn_id;
      tagged.fqdn = hit->fqdn;
      tagged.dns_response_time = hit->response_time;
      ++stats_.flows_tagged_at_export;
      m.flows_tagged_late.inc();
    }
  }

  tagged.protocol = baseline::classify(flow);
  // dnh-analyze: allow(alloc, baseline DPI labeling runs once per expired
  // flow, amortized across the flow's packets; the per-packet ingest path
  // above stays allocation-free)
  if (auto label = baseline::dpi_label(flow)) {
    tagged.dpi_label = std::move(*label);
  }
  if (tagged.protocol == flow::ProtocolClass::kTls) {
    // dnh-analyze: allow(alloc, certificate parse is once per expired TLS
    // flow, same amortization argument as the DPI label above)
    if (const auto info = baseline::inspect_certificate(flow)) {
      tagged.has_certificate = true;
      tagged.cert_cn = info->subject_cn;
      tagged.cert_san = info->san_dns;
    }
  }
  database_.add(std::move(tagged));
}

bool Sniffer::process_pcap(const std::string& path) {
  // Accepts classic pcap and pcapng transparently. In resync mode a
  // damaged file is read to the end and the damage lands in the
  // degradation counters instead of error().
  pcap::CaptureReadOptions options;
  options.resync = config_.resync_capture;
  pcap::CaptureReadReport report;
  const bool ok = pcap::read_any_capture(
      path,
      [this](const pcap::Frame& frame) {
        on_frame(frame.data, frame.timestamp);
      },
      options, report);
  stats_.degradation.capture_resyncs += report.corruption.resyncs;
  stats_.degradation.capture_bytes_skipped += report.corruption.bytes_skipped;
  stats_.degradation.capture_truncated_tails +=
      report.corruption.truncated_tail;
  error_ = std::move(report.error);
  return ok;
}

void Sniffer::finish() {
  table_.flush();
  flush_record_flows();
  publish_gauges();
}

}  // namespace dnh::core

#include "core/flowdb_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace dnh::core {
namespace {

constexpr std::string_view kHeader = "#dnhunter-flows v1";

std::string join_san(const std::vector<std::string>& san) {
  std::string out;
  for (const auto& name : san) {
    if (!out.empty()) out += ',';
    out += name;
  }
  return out;
}

template <typename T>
bool parse_int(std::string_view field, T& out) {
  const auto result =
      std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc{} &&
         result.ptr == field.data() + field.size();
}

}  // namespace

std::size_t write_flow_tsv(const FlowDatabase& db, std::ostream& out) {
  out << kHeader << '\n'
      << "#client_ip\tserver_ip\tclient_port\tserver_port\ttransport\t"
         "first_us\tlast_us\tpkts_c2s\tpkts_s2c\tbytes_c2s\tbytes_s2c\t"
         "protocol\tfqdn\tdns_response_us\ttagged_at_start\tdpi_label\t"
         "cert_cn\tcert_san\thas_certificate\n";
  for (const auto& flow : db.flows()) {
    out << flow.key.client_ip.to_string() << '\t'
        << flow.key.server_ip.to_string() << '\t' << flow.key.client_port
        << '\t' << flow.key.server_port << '\t'
        << (flow.key.transport == flow::Transport::kTcp ? "tcp" : "udp")
        << '\t' << flow.first_packet.micros_since_epoch() << '\t'
        << flow.last_packet.micros_since_epoch() << '\t' << flow.packets_c2s
        << '\t' << flow.packets_s2c << '\t' << flow.bytes_c2s << '\t'
        << flow.bytes_s2c << '\t' << static_cast<int>(flow.protocol) << '\t'
        << flow.fqdn << '\t' << flow.dns_response_time.micros_since_epoch()
        << '\t' << (flow.tagged_at_start ? 1 : 0) << '\t' << flow.dpi_label
        << '\t' << flow.cert_cn << '\t' << join_san(flow.cert_san) << '\t'
        << (flow.has_certificate ? 1 : 0) << '\n';
  }
  return db.size();
}

std::size_t write_flow_tsv(const FlowDatabase& db, const std::string& path) {
  std::ofstream out{path};
  if (!out) return 0;
  return write_flow_tsv(db, out);
}

namespace {

enum class RowError {
  kNone,
  kFieldCount,
  kAddress,
  kNumber,
  kTransport,
  kProtocol,
};

RowError parse_row(std::string_view line, TaggedFlow& flow) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 19) return RowError::kFieldCount;

  const auto client = net::Ipv4Address::parse(fields[0]);
  const auto server = net::Ipv4Address::parse(fields[1]);
  if (!client || !server) return RowError::kAddress;
  flow.key.client_ip = *client;
  flow.key.server_ip = *server;

  std::int64_t first_us = 0, last_us = 0, dns_us = 0;
  int protocol = 0, tagged = 0, has_cert = 0;
  if (!parse_int(fields[2], flow.key.client_port) ||
      !parse_int(fields[3], flow.key.server_port) ||
      !parse_int(fields[5], first_us) || !parse_int(fields[6], last_us) ||
      !parse_int(fields[7], flow.packets_c2s) ||
      !parse_int(fields[8], flow.packets_s2c) ||
      !parse_int(fields[9], flow.bytes_c2s) ||
      !parse_int(fields[10], flow.bytes_s2c) ||
      !parse_int(fields[11], protocol) ||
      !parse_int(fields[13], dns_us) || !parse_int(fields[14], tagged) ||
      !parse_int(fields[18], has_cert))
    return RowError::kNumber;
  if (fields[4] == "tcp") {
    flow.key.transport = flow::Transport::kTcp;
  } else if (fields[4] == "udp") {
    flow.key.transport = flow::Transport::kUdp;
  } else {
    return RowError::kTransport;
  }
  if (protocol < 0 ||
      protocol > static_cast<int>(flow::ProtocolClass::kOther))
    return RowError::kProtocol;
  flow.protocol = static_cast<flow::ProtocolClass>(protocol);
  flow.first_packet = util::Timestamp::from_micros(first_us);
  flow.last_packet = util::Timestamp::from_micros(last_us);
  flow.dns_response_time = util::Timestamp::from_micros(dns_us);
  flow.tagged_at_start = tagged != 0;
  // View into the caller's line buffer; FlowDatabase::add re-interns it.
  flow.fqdn = fields[12];
  flow.dpi_label = std::string{fields[15]};
  flow.cert_cn = std::string{fields[16]};
  if (!fields[17].empty()) {
    for (const auto san : util::split(fields[17], ','))
      flow.cert_san.emplace_back(san);
  }
  flow.has_certificate = has_cert != 0;
  return RowError::kNone;
}

void count_row_error(RowError error, TsvRowErrors& errors) {
  switch (error) {
    case RowError::kFieldCount: ++errors.bad_field_count; break;
    case RowError::kAddress: ++errors.bad_address; break;
    case RowError::kNumber: ++errors.bad_number; break;
    case RowError::kTransport: ++errors.bad_transport; break;
    case RowError::kProtocol: ++errors.bad_protocol; break;
    case RowError::kNone: break;
  }
}

}  // namespace

std::optional<FlowDatabase> read_flow_tsv(std::istream& in) {
  TsvRowErrors errors;
  return read_flow_tsv(in, TsvReadMode::kStrict, errors);
}

std::optional<FlowDatabase> read_flow_tsv(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  return read_flow_tsv(in);
}

std::optional<FlowDatabase> read_flow_tsv(std::istream& in, TsvReadMode mode,
                                          TsvRowErrors& errors) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  FlowDatabase db;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') continue;
    TaggedFlow flow;
    const RowError row_error = parse_row(line, flow);
    if (row_error != RowError::kNone) {
      count_row_error(row_error, errors);
      if (mode == TsvReadMode::kStrict) return std::nullopt;
      continue;  // lenient: a damaged row must not discard the database
    }
    db.add(std::move(flow));
  }
  return db;
}

std::optional<FlowDatabase> read_flow_tsv(const std::string& path,
                                          TsvReadMode mode,
                                          TsvRowErrors& errors) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  return read_flow_tsv(in, mode, errors);
}

}  // namespace dnh::core

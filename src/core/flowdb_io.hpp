// FlowDatabase serialization: the paper's architecture (Fig. 1) stores
// labeled flows in a database for the off-line analyzer; this is the
// interchange format — a versioned TSV that round-trips every TaggedFlow
// field, loadable by the analyzer, the CLI, or anything that reads TSV.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/flowdb.hpp"

namespace dnh::core {

/// Writes `db` as TSV with a "#dnhunter-flows v1" header line and one
/// column-documenting comment line. Returns the number of flows written.
std::size_t write_flow_tsv(const FlowDatabase& db, std::ostream& out);
std::size_t write_flow_tsv(const FlowDatabase& db, const std::string& path);

/// Reads a TSV produced by write_flow_tsv. Returns nullopt on a missing
/// file, bad header, or any malformed row (all-or-nothing).
std::optional<FlowDatabase> read_flow_tsv(std::istream& in);
std::optional<FlowDatabase> read_flow_tsv(const std::string& path);

}  // namespace dnh::core

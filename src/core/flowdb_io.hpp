// FlowDatabase serialization: the paper's architecture (Fig. 1) stores
// labeled flows in a database for the off-line analyzer; this is the
// interchange format — a versioned TSV that round-trips every TaggedFlow
// field, loadable by the analyzer, the CLI, or anything that reads TSV.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/flowdb.hpp"

namespace dnh::core {

/// Writes `db` as TSV with a "#dnhunter-flows v1" header line and one
/// column-documenting comment line. Returns the number of flows written.
std::size_t write_flow_tsv(const FlowDatabase& db, std::ostream& out);
std::size_t write_flow_tsv(const FlowDatabase& db, const std::string& path);

/// Reads a TSV produced by write_flow_tsv. Returns nullopt on a missing
/// file, bad header, or any malformed row (all-or-nothing).
std::optional<FlowDatabase> read_flow_tsv(std::istream& in);
std::optional<FlowDatabase> read_flow_tsv(const std::string& path);

/// How read_flow_tsv treats malformed rows.
enum class TsvReadMode {
  kStrict,   ///< any malformed row fails the whole read (default)
  kLenient,  ///< skip malformed rows, tallying them in TsvRowErrors
};

/// Per-category counts of rows skipped by a lenient read. All-zero after a
/// clean read; `total()` is the number of rows dropped.
struct TsvRowErrors {
  std::uint64_t bad_field_count = 0;  ///< wrong number of columns
  std::uint64_t bad_address = 0;      ///< unparseable client/server IP
  std::uint64_t bad_number = 0;       ///< non-numeric numeric field
  std::uint64_t bad_transport = 0;    ///< transport not "tcp"/"udp"
  std::uint64_t bad_protocol = 0;     ///< protocol class out of range

  std::uint64_t total() const noexcept {
    return bad_field_count + bad_address + bad_number + bad_transport +
           bad_protocol;
  }
};

/// Reads with explicit row-error policy. In kLenient mode a malformed row
/// is skipped and counted in `errors` rather than failing the read; only a
/// missing file or bad header returns nullopt. In kStrict mode behaves as
/// the two-argument overloads (errors still records the first bad row).
std::optional<FlowDatabase> read_flow_tsv(std::istream& in, TsvReadMode mode,
                                          TsvRowErrors& errors);
std::optional<FlowDatabase> read_flow_tsv(const std::string& path,
                                          TsvReadMode mode,
                                          TsvRowErrors& errors);

}  // namespace dnh::core

// Arena-backed FQDN interner: the single copy of every domain string the
// tagging pipeline touches.
//
// Every stage of the hot path (DNS sniffer -> resolver Clist -> flow
// tagger -> flow DB) used to materialize the FQDN as a fresh std::string;
// at line rate the allocator dominates the per-frame cost. A DomainTable
// stores each distinct name once in an append-only byte arena and hands
// out a 32-bit DomainId; the resolver, DNS log, pending tags and flow
// database all carry the id (plus a string_view into the arena for
// zero-copy reads).
//
// Design:
//  - Append-only CHUNKED arena: strings are packed into fixed-size chunks
//    and a chunk, once allocated, never moves or grows — so every
//    string_view handed out stays valid for the table's lifetime, across
//    arbitrary later growth.
//  - Open-addressing hash set (linear probing, power-of-two capacity) maps
//    bytes -> DomainId. Steady state (name already interned) does zero
//    heap allocation: one hash, a short probe, no copies.
//  - DomainId 0 is reserved for the empty string ("unlabeled"), so a
//    value-initialized id means exactly what an empty fqdn used to.
//
// Ownership: one table per shard (each pipeline worker's Sniffer owns
// one, shared with its resolver and flow database via shared_ptr). The
// table is NOT thread-safe; cross-thread hand-off follows the pipeline's
// usual rule — windows move between threads through a mutex-guarded
// inbox, which provides the happens-before edge, and only one thread
// touches a table at a time. The merge stage unifies shard-local ids by
// re-interning into the output window's table (see absorb()).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace dnh::core {

/// Dense handle for one interned domain name. Stable for the lifetime of
/// the DomainTable that minted it; meaningless across tables (the merge
/// stage remaps — see DomainTable::absorb).
using DomainId = std::uint32_t;

/// Id of the empty string in every table: the "no label" value.
inline constexpr DomainId kEmptyDomainId = 0;

class DomainTable {
 public:
  DomainTable();

  DomainTable(const DomainTable&) = delete;
  DomainTable& operator=(const DomainTable&) = delete;

  /// Returns the id for `s`, interning it on first sight. Steady state
  /// (string already present) allocates nothing.
  DomainId intern(std::string_view s);

  /// Id for `s` if already interned; nullopt otherwise. Never allocates.
  std::optional<DomainId> find(std::string_view s) const noexcept;

  /// The interned text. Valid for the table's lifetime (chunks never
  /// move). Out-of-range ids and kEmptyDomainId yield "".
  std::string_view view(DomainId id) const noexcept {
    return id < views_.size() ? views_[id] : std::string_view{};
  }

  /// Distinct strings interned, including the reserved empty string.
  std::size_t size() const noexcept { return views_.size(); }

  /// Bytes reserved by the arena chunks (the dnh_domain_table_bytes
  /// gauge; excludes the id-vector and hash-slot overhead).
  std::size_t arena_bytes() const noexcept { return arena_bytes_; }

  /// Interns every string of `other` into this table and returns the
  /// remap vector: `remap[old_id]` is the equivalent id here. Used by the
  /// deterministic merge to unify shard-local id spaces.
  std::vector<DomainId> absorb(const DomainTable& other);

 private:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  std::string_view append(std::string_view s);
  void grow_slots();

  // Arena: chunks never move once allocated (string_view stability).
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = 0;   ///< bytes used in chunks_.back()
  std::size_t chunk_cap_ = 0;    ///< capacity of chunks_.back()
  std::size_t arena_bytes_ = 0;  ///< total bytes reserved across chunks

  std::vector<std::string_view> views_;  ///< id -> interned text
  /// Open-addressing slots holding DomainIds; 0 is the empty-slot
  /// sentinel (valid because id 0, the empty string, is special-cased
  /// and never stored here). Power-of-two sized.
  std::vector<DomainId> slots_;
  std::size_t mask_ = 0;
};

}  // namespace dnh::core

#include "core/policy.hpp"

#include "util/strings.hpp"

namespace dnh::core {

std::string_view policy_action_name(PolicyAction a) noexcept {
  switch (a) {
    case PolicyAction::kAllow: return "allow";
    case PolicyAction::kBlock: return "block";
    case PolicyAction::kPrioritize: return "prioritize";
    case PolicyAction::kDeprioritize: return "deprioritize";
    case PolicyAction::kRateLimit: return "rate-limit";
  }
  return "?";
}

bool domain_suffix_match(std::string_view fqdn,
                         std::string_view suffix) noexcept {
  if (suffix.empty() || fqdn.size() < suffix.size()) return false;
  if (!util::iends_with(fqdn, suffix)) return false;
  if (fqdn.size() == suffix.size()) return true;
  return fqdn[fqdn.size() - suffix.size() - 1] == '.';
}

void PolicyEnforcer::add_rule(std::string domain_suffix,
                              PolicyAction action) {
  rules_.push_back({util::to_lower(domain_suffix), action});
}

PolicyAction PolicyEnforcer::decide(std::string_view fqdn) const {
  ++stats_.decisions;
  PolicyAction action = default_action_;
  if (fqdn.empty()) {
    ++stats_.unlabeled;
  } else {
    std::size_t best_len = 0;
    for (const auto& rule : rules_) {
      if (rule.domain_suffix.size() > best_len &&
          domain_suffix_match(fqdn, rule.domain_suffix)) {
        best_len = rule.domain_suffix.size();
        action = rule.action;
      }
    }
  }
  switch (action) {
    case PolicyAction::kBlock: ++stats_.blocked; break;
    case PolicyAction::kPrioritize: ++stats_.prioritized; break;
    case PolicyAction::kDeprioritize: ++stats_.deprioritized; break;
    case PolicyAction::kRateLimit: ++stats_.rate_limited; break;
    case PolicyAction::kAllow: ++stats_.allowed; break;
  }
  return action;
}

}  // namespace dnh::core

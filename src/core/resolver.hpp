// The DN-Hunter DNS Resolver (paper Sec. 3.1.1, Algorithm 1).
//
// A replica of the clients' DNS caches built purely from sniffed responses:
//  - FQDN entries live in a fixed-size circular FIFO (the "Clist" of size
//    L), which bounds memory and implicitly ages entries out — L must be
//    dimensioned against the monitored hosts' cache lifetime (Sec. 6).
//  - A (clientIP, serverIP) -> entry index implements lookup. The paper's
//    primary design is two nested ordered maps (O(log Nc + log Ns(c)));
//    footnote 2 notes hash tables as the alternative. Both live on as
//    policies, but the DEFAULT is now FlatMapPolicy: the two IPs are
//    packed into one 64-bit key probed in a single open-addressing
//    FlatHash — one cache-friendly probe instead of two node-walks on
//    every lookup/insert (docs/performance.md "Flat-hash hot path";
//    bench_lookup_micro measures all three).
//  - Entries keep back-references to their index keys so an overwritten
//    Clist slot (line 23-25 of Alg. 1) can remove exactly its own keys.
//
// Determinism note: no query ever ITERATES the index — every answer goes
// key -> Clist entry — so the index's iteration order (undefined for the
// flat and unordered policies) can never leak into output. That is why
// swapping the default policy keeps the tag TSV byte-identical, which the
// differential tests (sharded vs single-threaded, policy vs policy)
// enforce.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/domain_table.hpp"
#include "net/ip.hpp"
#include "util/flat_hash.hpp"
#include "util/time.hpp"

namespace dnh::core {

template <typename MapPolicy, typename V>
class NestedPairIndex;
template <typename V>
class FlatPairIndex;

/// Ordered maps: the paper's primary design (strict weak ordering on IPs).
struct OrderedMapPolicy {
  template <typename K, typename V>
  using Map = std::map<K, V>;
  template <typename V>
  using PairIndex = NestedPairIndex<OrderedMapPolicy, V>;
};

/// Hash maps: the footnote-2 alternative, still node-based.
struct UnorderedMapPolicy {
  template <typename K, typename V>
  using Map = std::unordered_map<K, V>;
  template <typename V>
  using PairIndex = NestedPairIndex<UnorderedMapPolicy, V>;
};

/// Open-addressing flat table over a packed (client, server) 64-bit key:
/// one probe, no per-entry heap nodes. The default policy.
struct FlatMapPolicy {
  template <typename V>
  using PairIndex = FlatPairIndex<V>;
};

/// The nested clientIP -> (serverIP -> V) index shape shared by the
/// Ordered and Unordered policies — exactly the pre-flat-hash layout, kept
/// both as the paper-faithful reference and as the differential-test
/// oracle for FlatPairIndex.
template <typename MapPolicy, typename V>
class NestedPairIndex {
 public:
  const V* find(net::Ipv4Address client, net::Ipv4Address server) const {
    const auto client_it = client_map_.find(client);
    if (client_it == client_map_.end()) return nullptr;
    const auto server_it = client_it->second.find(server);
    if (server_it == client_it->second.end()) return nullptr;
    return &server_it->second;
  }
  V* find(net::Ipv4Address client, net::Ipv4Address server) {
    return const_cast<V*>(std::as_const(*this).find(client, server));
  }

  /// Value slot for (client, server), created value-initialized if absent.
  std::pair<V*, bool> try_emplace(net::Ipv4Address client,
                                  net::Ipv4Address server) {
    auto [it, inserted] = client_map_[client].try_emplace(server);
    return {&it->second, inserted};
  }

  /// Removes the (client, server) key; prunes the client's inner map when
  /// it empties so client_count() stays exact.
  void erase_key(net::Ipv4Address client, net::Ipv4Address server) {
    const auto client_it = client_map_.find(client);
    if (client_it == client_map_.end()) return;
    client_it->second.erase(server);
    if (client_it->second.empty()) client_map_.erase(client_it);
  }

  std::size_t client_count() const noexcept { return client_map_.size(); }
  void reserve(std::size_t) {}  // node-based maps have no useful reserve

 private:
  template <typename K, typename W>
  using Map = typename MapPolicy::template Map<K, W>;
  // Bounded by Clist recycling: every key is a back-reference of a live
  // Clist entry and delete_back_references removes it on eviction.
  // dnh-lint: bounded(delete_back_references)
  Map<net::Ipv4Address, Map<net::Ipv4Address, V>> client_map_;
};

/// Single flat open-addressing table keyed by the packed 64-bit
/// (client, server) pair. A small side table keeps per-client key counts
/// so client_count() (dimensioning studies, Sec. 6) stays O(1) and exact;
/// it is touched only when a key is created or destroyed, never on the
/// per-packet lookup path.
template <typename V>
class FlatPairIndex {
 public:
  // dnh-analyze: hot
  const V* find(net::Ipv4Address client, net::Ipv4Address server) const {
    const auto it = table_.find(pack(client, server));
    return it == table_.end() ? nullptr : &it->second;
  }
  V* find(net::Ipv4Address client, net::Ipv4Address server) {
    return const_cast<V*>(std::as_const(*this).find(client, server));
  }

  std::pair<V*, bool> try_emplace(net::Ipv4Address client,
                                  net::Ipv4Address server) {
    auto [it, inserted] = table_.try_emplace(pack(client, server));
    if (inserted) ++client_refs_[client.value()];
    return {&it->second, inserted};
  }

  void erase_key(net::Ipv4Address client, net::Ipv4Address server) {
    if (table_.erase(pack(client, server)) == 0) return;
    const auto it = client_refs_.find(client.value());
    if (it != client_refs_.end() && --it->second == 0)
      client_refs_.erase(it);
  }

  std::size_t client_count() const noexcept { return client_refs_.size(); }

  void reserve(std::size_t n) {
    table_.reserve(n);
    client_refs_.reserve(n / 4 + 1);
  }

 private:
  static std::uint64_t pack(net::Ipv4Address client,
                            net::Ipv4Address server) noexcept {
    return (std::uint64_t{client.value()} << 32) | server.value();
  }

  // Bounded by Clist recycling, same as the nested shape: eviction calls
  // delete_back_references -> erase_key for every key the slot created.
  // dnh-lint: bounded(delete_back_references)
  util::FlatHash<std::uint64_t, V> table_;
  /// client -> number of live (client, *) keys; emptied with table_.
  // dnh-lint: bounded(delete_back_references)
  util::FlatHash<std::uint32_t, std::uint32_t> client_refs_;
};

/// Result of a successful lookup: the FQDN plus when its DNS response was
/// observed (used for first-flow-delay analytics, Figs. 12-13).
struct ResolverHit {
  /// View into the resolver's DomainTable arena: valid for the table's
  /// lifetime, not just until the Clist entry is evicted.
  std::string_view fqdn;
  util::Timestamp response_time;
  /// Interned id of `fqdn` in the resolver's DomainTable; lets consumers
  /// that share the table (the sniffer's pending tags) skip re-hashing.
  DomainId fqdn_id = kEmptyDomainId;
};

/// How many historical labels a (client,server) key retains for the
/// multi-label extension (paper Sec. 6: "DN-Hunter could easily be
/// extended to return all possible labels").
inline constexpr std::size_t kMaxLabelsPerKey = 4;

/// Counters exposed for dimensioning studies (Sec. 6).
struct ResolverStats {
  std::uint64_t inserts = 0;        ///< DNS responses inserted
  std::uint64_t evictions = 0;      ///< Clist slots recycled
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// (client,server) key re-pointed to a NEW FQDN — the label-confusion
  /// situation discussed in Sec. 6.
  std::uint64_t replaced_different_fqdn = 0;
  /// Same key re-pointed to the same FQDN (TTL refresh; harmless).
  std::uint64_t replaced_same_fqdn = 0;
};

template <typename MapPolicy = FlatMapPolicy>
class BasicDnsResolver {
 public:
  /// `clist_size` is the paper's L; it bounds live entries. The resolver
  /// interns FQDNs in `table` when given (the sniffer shares one table
  /// across resolver, DNS log and flow DB) or in a private table otherwise.
  explicit BasicDnsResolver(std::size_t clist_size,
                            std::shared_ptr<DomainTable> table = nullptr)
      : table_{table ? std::move(table)
                     : std::make_shared<DomainTable>()},
        clist_(clist_size > 0 ? clist_size : 1) {
    // Warm the index for small/medium Clists so steady state does not
    // rehash; capped because live keys track traffic, not L, and a
    // default L of 2^20 per shard must not pre-commit megabytes.
    index_.reserve(std::min(clist_.size(), std::size_t{1} << 12));
  }

  /// INSERT(DNSresponse) with a pre-interned name: the zero-allocation
  /// sniffer path. `fqdn` must come from this resolver's DomainTable.
  // dnh-analyze: hot
  void insert(net::Ipv4Address client, DomainId fqdn,
              std::span<const net::Ipv4Address> servers,
              util::Timestamp now) {
    // dnh-lint: hot
    ++stats_.inserts;

    // Recycle the next Clist slot (Alg. 1 lines 22-25): drop the old
    // entry's keys from the index before reusing the slot.
    Entry& slot = clist_[next_];
    if (slot.in_use) {
      ++stats_.evictions;
      delete_back_references(slot);
    }
    const std::uint32_t index = static_cast<std::uint32_t>(next_);
    // Increment-and-wrap: the modulo on every insert was a measurable
    // per-response cost (integer division) for a counter that only ever
    // advances by one.
    if (++next_ == clist_.size()) next_ = 0;

    slot.in_use = true;
    slot.generation += 1;
    slot.fqdn = fqdn;
    slot.response_time = now;
    slot.references.clear();
    slot.references.reserve(servers.size());

    for (const auto server : servers) {
      // Push the new reference in front of any older ones for this
      // (client,server) key (Alg. 1 lines 11-15; older labels are kept
      // for the lookup_all extension instead of being dropped).
      auto [chain, inserted] = index_.try_emplace(client, server);
      if (!inserted && !chain->empty()) {
        const Entry& newest = clist_[chain->front().index];
        if (newest.in_use &&
            newest.generation == chain->front().generation) {
          if (newest.fqdn == slot.fqdn)
            ++stats_.replaced_same_fqdn;
          else
            ++stats_.replaced_different_fqdn;
        }
      }
      chain->insert(chain->begin(), EntryRef{index, slot.generation});
      if (chain->size() > kMaxLabelsPerKey) chain->resize(kMaxLabelsPerKey);
      slot.references.push_back({client, server});
    }
    if (slot.references.empty()) {
      // Response with no A records: keep the slot unused.
      slot.in_use = false;
    }
  }

  /// INSERT(DNSresponse) from text: interns `fqdn` first. Convenience for
  /// the trace generator and tests; the sniffer uses the DomainId overload.
  void insert(net::Ipv4Address client, std::string_view fqdn,
              std::span<const net::Ipv4Address> servers,
              util::Timestamp now) {
    insert(client, table_->intern(fqdn), servers, now);
  }

  /// LOOKUP(ClientIP, ServerIP): the FQDN `client` most recently resolved
  /// for `server`, or nullopt. The returned view points into the
  /// DomainTable arena and stays valid for the table's lifetime (eviction
  /// recycles the Clist slot, not the interned bytes).
  // dnh-analyze: hot
  std::optional<ResolverHit> lookup(net::Ipv4Address client,
                                    net::Ipv4Address server) const {
    // dnh-lint: hot
    ++stats_.lookups;
    const RefChain* chain = find_chain(client, server);
    if (chain) {
      for (const auto& ref : *chain) {
        const Entry& entry = clist_[ref.index];
        if (entry.in_use && entry.generation == ref.generation) {
          ++stats_.hits;
          return ResolverHit{table_->view(entry.fqdn), entry.response_time,
                             entry.fqdn};
        }
      }
    }
    ++stats_.misses;
    return std::nullopt;
  }

  /// The multi-label extension: every FQDN this (client,server) key was
  /// recently bound to, newest first, duplicates removed. The first
  /// element equals lookup()'s answer. Does not touch hit/miss counters.
  std::vector<ResolverHit> lookup_all(net::Ipv4Address client,
                                      net::Ipv4Address server) const {
    std::vector<ResolverHit> out;
    const RefChain* chain = find_chain(client, server);
    if (!chain) return out;
    for (const auto& ref : *chain) {
      const Entry& entry = clist_[ref.index];
      if (!entry.in_use || entry.generation != ref.generation) continue;
      bool duplicate = false;
      for (const auto& hit : out) duplicate |= hit.fqdn_id == entry.fqdn;
      if (!duplicate)
        out.push_back(ResolverHit{table_->view(entry.fqdn),
                                  entry.response_time, entry.fqdn});
    }
    return out;
  }

  /// Newest label whose DNS response was observed at or before `cutoff`,
  /// walking the raw (un-deduplicated) per-key history. This is the
  /// schedule-independent export-time query: with `cutoff` = the flow's
  /// last packet, responses that arrived after the flow ended are ignored,
  /// so the answer does not depend on WHEN the export fires (idle-sweep
  /// cadence) — single-threaded and sharded runs label identically. The
  /// kMaxLabelsPerKey history cap bounds how far back this can see.
  /// Does not touch hit/miss counters.
  std::optional<ResolverHit> lookup_at_or_before(net::Ipv4Address client,
                                                 net::Ipv4Address server,
                                                 util::Timestamp cutoff) const {
    const RefChain* chain = find_chain(client, server);
    if (!chain) return std::nullopt;
    for (const auto& ref : *chain) {
      const Entry& entry = clist_[ref.index];
      if (!entry.in_use || entry.generation != ref.generation) continue;
      if (entry.response_time > cutoff) continue;
      return ResolverHit{table_->view(entry.fqdn), entry.response_time,
                         entry.fqdn};
    }
    return std::nullopt;
  }

  /// The interner backing this resolver's FQDN storage.
  const std::shared_ptr<DomainTable>& domain_table() const noexcept {
    return table_;
  }

  const ResolverStats& stats() const noexcept { return stats_; }
  std::size_t capacity() const noexcept { return clist_.size(); }

  /// Number of clients currently present in the index.
  std::size_t client_count() const noexcept {
    return index_.client_count();
  }

 private:
  struct Entry {
    DomainId fqdn = kEmptyDomainId;
    util::Timestamp response_time;
    std::vector<std::pair<net::Ipv4Address, net::Ipv4Address>> references;
    std::uint32_t generation = 0;
    bool in_use = false;
  };
  /// Map value element: Clist index plus the generation it was created
  /// for, so a stale mapping to a recycled slot is detected instead of
  /// mislabeling.
  struct EntryRef {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };
  /// Newest-first bounded history of labels for one (client,server) key.
  using RefChain = std::vector<EntryRef>;
  using PairIndex = typename MapPolicy::template PairIndex<RefChain>;

  const RefChain* find_chain(net::Ipv4Address client,
                             net::Ipv4Address server) const {
    return index_.find(client, server);
  }

  void delete_back_references(Entry& entry) {
    for (const auto& [client, server] : entry.references) {
      RefChain* chain = index_.find(client, server);
      if (chain == nullptr) continue;
      std::erase_if(*chain, [&](const EntryRef& ref) {
        return &clist_[ref.index] == &entry &&
               ref.generation == entry.generation;
      });
      if (chain->empty()) index_.erase_key(client, server);
    }
    entry.references.clear();
    entry.in_use = false;
  }

  std::shared_ptr<DomainTable> table_;
  std::vector<Entry> clist_;
  std::size_t next_ = 0;
  PairIndex index_;
  mutable ResolverStats stats_;
};

/// The production default: flat single-probe index.
using DnsResolver = BasicDnsResolver<FlatMapPolicy>;
/// The paper's nested ordered-map design — the differential oracle.
using DnsResolverOrdered = BasicDnsResolver<OrderedMapPolicy>;
using DnsResolverUnordered = BasicDnsResolver<UnorderedMapPolicy>;

}  // namespace dnh::core

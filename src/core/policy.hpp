// FQDN-based policy enforcement (paper Fig. 1's "Policy Enforcer").
//
// The paper's motivating scenario: block zynga.com while prioritizing
// dropbox.com even though both resolve to the same Amazon EC2 addresses —
// impossible with IP filters, trivial with flow labels. Rules match FQDN
// suffixes at domain-label boundaries; the most specific (longest) matching
// rule wins. Because DN-Hunter tags at the first packet, decisions cover
// the whole flow including the TCP handshake.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dnh::core {

enum class PolicyAction : std::uint8_t {
  kAllow,
  kBlock,
  kPrioritize,
  kDeprioritize,
  kRateLimit,
};

std::string_view policy_action_name(PolicyAction a) noexcept;

struct PolicyRule {
  std::string domain_suffix;  ///< "zynga.com" matches it and *.zynga.com
  PolicyAction action = PolicyAction::kAllow;
};

struct PolicyStats {
  std::uint64_t decisions = 0;
  std::uint64_t blocked = 0;
  std::uint64_t prioritized = 0;
  std::uint64_t deprioritized = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t allowed = 0;  ///< default or explicit allow
  std::uint64_t unlabeled = 0;  ///< flows with no FQDN (default action)
};

class PolicyEnforcer {
 public:
  /// Action applied when no rule matches (or the flow has no label).
  explicit PolicyEnforcer(PolicyAction default_action = PolicyAction::kAllow)
      : default_action_{default_action} {}

  void add_rule(std::string domain_suffix, PolicyAction action);

  /// Decides the action for a flow labeled `fqdn` (empty = unlabeled).
  /// Longest matching suffix wins; matching is at label boundaries, so the
  /// rule "zynga.com" does NOT match "notzynga.com".
  PolicyAction decide(std::string_view fqdn) const;

  const PolicyStats& stats() const noexcept { return stats_; }
  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  std::vector<PolicyRule> rules_;
  PolicyAction default_action_;
  mutable PolicyStats stats_;
};

/// True if `fqdn` equals `suffix` or ends with "." + suffix.
bool domain_suffix_match(std::string_view fqdn,
                         std::string_view suffix) noexcept;

}  // namespace dnh::core

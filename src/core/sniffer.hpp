// The DN-Hunter Real-Time Sniffer (paper Fig. 1): DNS Response Sniffer +
// Flow Sniffer + Flow Tagger feeding the labeled Flow Database.
//
// Consumes a packet stream (live, or a pcap file — identical code path),
// maintains the DNS Resolver replica of client caches, tags each flow at
// its FIRST packet when the resolver already knows the (client, server)
// pair — the property that enables proactive per-flow policy — and exports
// finished flows into the FlowDatabase enriched with DPI/cert-inspection
// baseline fields for the comparison analytics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/domain_table.hpp"
#include "core/flowdb.hpp"
#include "core/resolver.hpp"
#include "dns/wire_scan.hpp"
#include "flow/table.hpp"
#include "flowexport/orient.hpp"
#include "net/bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/flat_hash.hpp"
#include "util/time.hpp"

namespace dnh::core {

/// One sniffed DNS response, retained for the off-line delay/dimensioning
/// analytics (Figs. 12-14, Tab. 9, Sec. 6).
struct DnsEvent {
  util::Timestamp time;
  net::Ipv4Address client;
  /// View into the sniffer's DomainTable arena; valid while the table
  /// lives (the sniffer's FlowDatabase shares and thereby retains it).
  std::string_view fqdn;
  std::vector<net::Ipv4Address> servers;
  /// Interned id of `fqdn` in that table.
  DomainId fqdn_id = kEmptyDomainId;
};

struct SnifferConfig {
  /// Clist size L (paper Sec. 6 dimensions this against cache lifetime).
  std::size_t clist_size = 1 << 20;
  flow::TableConfig table;
  /// Retain the DNS event log for off-line analytics (costs memory).
  bool record_dns_log = true;
  /// Bounded-memory guard on the DNS event log: when full, the oldest half
  /// is evicted (counted in DegradationStats::dns_log_evictions) so a
  /// months-long run cannot exhaust memory. 0 disables the cap.
  std::size_t max_dns_log = 4u << 20;
  /// Cap on concurrent DNS-over-TCP reassembly buffers; an adversary
  /// opening many half-finished TCP/53 streams must not grow state
  /// unboundedly. Oldest-arbitrary eviction past this point.
  std::size_t max_tcp_dns_buffers = 4096;
  /// Read damaged pcap files in skip-and-resync mode instead of aborting
  /// at the first corrupt record (see pcap::Reader::Mode).
  bool resync_capture = false;
  /// Decode DNS responses with the full DnsMessage codec instead of the
  /// zero-allocation wire scanner. The two accept/reject and classify
  /// identically (tested differentially); this switch exists for A/B
  /// benchmarking and as a fallback while the scanner soaks.
  bool legacy_dns_decode = false;
  /// Shard label on this sniffer's per-instance gauges
  /// (`dnh_resolver_cache_size{shard=N}`, ...). The sharded pipeline sets
  /// its worker index; the single-threaded path keeps 0. Counters are
  /// process-wide and unlabeled — they sum across shards by construction.
  std::size_t metrics_shard = 0;
  /// Flow-export ingest mode: packets feed only the DNS side (resolver,
  /// event log); the flow table never sees them. Flows arrive pre-summarized
  /// through on_export_record() instead, so running the full capture through
  /// on_frame() cannot double-count traffic the router already exported.
  bool dns_only = false;
};

/// Typed accounting of every malformed input the pipeline survived. One
/// counter per fault class — "how degraded is this capture?" must be
/// answerable without grepping logs. Zero across the board on clean input.
struct DegradationStats {
  // Frame/packet layer (each also counts once in decode_failures).
  std::uint64_t frames_truncated = 0;   ///< frame ends inside L2 headers
  std::uint64_t bad_ip_headers = 0;     ///< IPv4/IPv6 header malformed
  std::uint64_t bad_l4_headers = 0;     ///< TCP/UDP header malformed
  std::uint64_t unsupported_frames = 0; ///< benign non-IP/TCP/UDP traffic
  std::uint64_t timestamp_regressions = 0;  ///< frame ts before predecessor

  // DNS wire layer (each also counts once in dns_parse_failures).
  std::uint64_t dns_truncated = 0;            ///< message/record cut short
  std::uint64_t dns_pointer_loops = 0;        ///< compression pointer cycle
  std::uint64_t dns_pointer_out_of_range = 0; ///< pointer past the message
  std::uint64_t dns_bad_names = 0;            ///< reserved labels/limits
  std::uint64_t dns_count_lies = 0;           ///< implausible section counts

  // Bounded-memory guards.
  std::uint64_t tcp_dns_overflows = 0;        ///< runaway streams reset
  std::uint64_t tcp_dns_buffer_evictions = 0; ///< buffers evicted at cap
  std::uint64_t dns_log_evictions = 0;        ///< DnsEvents evicted at cap

  // Capture container layer (pcap resync mode).
  std::uint64_t capture_resyncs = 0;         ///< corrupt records skipped
  std::uint64_t capture_bytes_skipped = 0;   ///< bytes lost to corruption
  std::uint64_t capture_truncated_tails = 0; ///< files ending mid-record

  // Parallel-pipeline load shedding (pipeline::BackpressurePolicy::kDrop).
  // Counted here so "how degraded is this run?" has one answer whether the
  // damage came from the wire or from overload. Not part of
  // malformed_total(): shed load is a capacity event, not hostile input.
  std::uint64_t pipeline_frames_dropped = 0;  ///< frames shed at full queues

  /// Total hostile-or-corrupt events (excludes benign unsupported frames
  /// and byte counts).
  std::uint64_t malformed_total() const noexcept {
    return frames_truncated + bad_ip_headers + bad_l4_headers +
           timestamp_regressions + dns_truncated + dns_pointer_loops +
           dns_pointer_out_of_range + dns_bad_names + dns_count_lies +
           tcp_dns_overflows + capture_resyncs + capture_truncated_tails;
  }
};

struct SnifferStats {
  std::uint64_t frames = 0;
  std::uint64_t decode_failures = 0;  ///< non-IP/TCP/UDP or malformed
  std::uint64_t dns_responses = 0;
  std::uint64_t dns_parse_failures = 0;
  std::uint64_t dns_queries = 0;  ///< client->server DNS packets (not stored)
  std::uint64_t dns_tcp_messages = 0;  ///< responses carried over TCP
  std::uint64_t flows_exported = 0;
  std::uint64_t flows_tagged_at_start = 0;
  std::uint64_t flows_tagged_at_export = 0;  ///< late tag (rare)
  std::uint64_t export_records = 0;  ///< flow-export records ingested
  DegradationStats degradation;  ///< typed malformed-input accounting
};

class Sniffer {
 public:
  /// Invoked at each flow's first packet with the label DN-Hunter already
  /// has ("" when unknown) — the hook a live policy enforcer attaches to.
  using FlowStartHook =
      std::function<void(const flow::FlowRecord&, std::string_view fqdn)>;

  explicit Sniffer(SnifferConfig config = {});

  /// Feeds one link-layer frame.
  void on_frame(net::BytesView frame, util::Timestamp ts);

  /// Feeds one oriented flow-export record (NetFlow/IPFIX ingest). Both
  /// directions of a flow merge under the oriented key until an
  /// arrival-driven idle gap or finish() flushes the flow through the same
  /// tagging/export path packets take. `arrival` is when the export
  /// datagram reached the collector (drives the idle sweep only — tag
  /// decisions depend solely on the record's own timestamps).
  void on_export_record(const flowexport::OrientedRecord& record,
                        util::Timestamp arrival);

  /// Streams a pcap file through the sniffer. Returns false if the file
  /// cannot be opened or is corrupt (partial processing may have occurred;
  /// see `error()`).
  bool process_pcap(const std::string& path);

  /// Flushes still-open flows into the database (end of capture).
  void finish();

  void set_flow_start_hook(FlowStartHook hook) {
    flow_start_hook_ = std::move(hook);
  }

  const FlowDatabase& database() const noexcept { return database_; }
  FlowDatabase& database() noexcept { return database_; }

  /// Moves the accumulated flow database out and starts a fresh one; the
  /// resolver and live flow table are untouched (window rotation for
  /// long-running deployments — see core/live.hpp). The fresh database
  /// shares the sniffer's DomainTable, so labels interned in earlier
  /// windows stay valid and are not re-copied.
  FlowDatabase take_database() {
    FlowDatabase out = std::move(database_);
    database_ = FlowDatabase{domains_};
    return out;
  }

  /// The interner shared by this sniffer's resolver, DNS log and
  /// databases. DnsEvent/TaggedFlow views point into it.
  const std::shared_ptr<DomainTable>& domain_table() const noexcept {
    return domains_;
  }

  /// Moves the DNS event log out and starts a fresh one.
  std::vector<DnsEvent> take_dns_log() {
    std::vector<DnsEvent> out = std::move(dns_log_);
    dns_log_.clear();
    return out;
  }
  const DnsResolver& resolver() const noexcept { return resolver_; }
  const std::vector<DnsEvent>& dns_log() const noexcept { return dns_log_; }
  const SnifferStats& stats() const noexcept { return stats_; }
  const DegradationStats& degradation() const noexcept {
    return stats_.degradation;
  }
  const std::string& error() const noexcept { return error_; }

 private:
  struct PendingTag {
    DomainId fqdn = kEmptyDomainId;
    util::Timestamp response_time;
  };

  /// Publishes this sniffer's state gauges (resolver/cache/table sizes)
  /// from the owning thread; called every kGaugePublishInterval frames
  /// and at finish() so the metrics exporter sees live-ish values without
  /// racing the hot path.
  void publish_gauges();
  static constexpr std::uint64_t kGaugePublishInterval = 4096;

  void on_dns_packet(const packet::DecodedPacket& pkt);
  void on_tcp_dns_segment(const packet::DecodedPacket& pkt);
  void handle_dns_message(net::BytesView wire, net::Ipv4Address client,
                          util::Timestamp ts);
  void on_flow_start(const flow::FlowRecord& flow);
  void on_flow_export(flow::FlowRecord&& flow);
  /// Flushes record-derived flows idle past the table's idle_timeout
  /// relative to `now` (memory bound only; labels are cutoff queries and
  /// never depend on when this runs).
  void sweep_record_flows(util::Timestamp now);
  /// Flushes every record-derived flow, in sorted key order.
  void flush_record_flows();

  SnifferConfig config_;
  /// Declared before every member that shares it (resolver, database).
  std::shared_ptr<DomainTable> domains_;
  DnsResolver resolver_;
  flow::FlowTable table_;
  FlowDatabase database_;
  /// Reused decode buffers: steady-state DNS handling allocates nothing.
  dns::ResponseScratch dns_scratch_;
  std::vector<DnsEvent> dns_log_;
  // Flat open-addressing tables (docs/performance.md "Flat-hash hot
  // path"): probed per flow start / per TCP-DNS segment / per export
  // record. Flush paths sort keys before export, so iteration order never
  // reaches the output.
  // dnh-lint: bounded(on_flow_export) one entry per live tagged flow,
  // erased when the flow exports; the flow table's idle sweep bounds
  // live flows.
  util::FlatHash<flow::FlowKey, PendingTag> pending_tags_;
  /// Per-connection reassembly of length-prefixed DNS-over-TCP responses,
  /// keyed by (clientIP, client port).
  // dnh-lint: bounded(max_tcp_dns_buffers) oldest-arbitrary eviction at
  // the cap, counted in tcp_dns_buffer_evictions.
  util::FlatHash<std::uint64_t, net::Bytes> tcp_dns_buffers_;
  /// Record-derived flows mid-merge (flow-export ingest): the two
  /// directional export records of one flow accumulate here until flushed.
  // dnh-lint: bounded(sweep_record_flows) idle entries flushed on the
  // table's sweep cadence; finish() drains the rest.
  util::FlatHash<flow::FlowKey, flow::FlowRecord> record_flows_;
  FlowStartHook flow_start_hook_;
  SnifferStats stats_;
  bool have_last_frame_ts_ = false;
  util::Timestamp last_frame_ts_;
  std::string error_;

  // Observability (docs/observability.md): sampled span gates are owned
  // here because a Sniffer is single-threaded; per-shard gauges carry the
  // {shard=N} label from config_.metrics_shard.
  obs::SampleGate decode_gate_{64};
  obs::SampleGate dns_gate_{16};
  obs::Gauge resolver_cache_gauge_;
  obs::Gauge resolver_clients_gauge_;
  obs::Gauge flow_table_gauge_;
  obs::Gauge dns_log_gauge_;
  obs::Gauge tcp_buffers_gauge_;
  obs::Gauge pending_tags_gauge_;
  obs::Gauge domain_table_bytes_gauge_;
  obs::Gauge domain_table_size_gauge_;
};

}  // namespace dnh::core

// The labeled Flow Database (paper Fig. 1): the sniffer's output store that
// the off-line analyzer mines. Holds each finished flow with its FQDN tag
// and protocol class, with secondary indexes matching the analytics
// algorithms' query patterns (by 2nd-level domain for Alg. 2, by serverIP
// for Alg. 3, by destination port for Alg. 4).
//
// FQDN storage is interned: every label lives once in the database's
// DomainTable and flows carry a DomainId plus a string_view into the
// table's arena. add() re-interns whatever text the caller supplies, so a
// producer's fqdn view only has to stay valid across the add() call; the
// indexes hash 32-bit ids instead of full strings.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/domain_table.hpp"
#include "flow/flow.hpp"
#include "net/ip.hpp"
#include "util/time.hpp"

namespace dnh::core {

/// One finished, labeled flow.
struct TaggedFlow {
  flow::FlowKey key;
  util::Timestamp first_packet;
  util::Timestamp last_packet;
  std::uint64_t packets_c2s = 0;
  std::uint64_t packets_s2c = 0;
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;
  flow::ProtocolClass protocol = flow::ProtocolClass::kUnknown;

  /// DN-Hunter label; empty when the lookup missed. Once the flow is in a
  /// FlowDatabase this view points into the database's DomainTable (valid
  /// for the database's lifetime); before add(), it points at whatever
  /// the producer staged and only needs to outlive the add() call.
  std::string_view fqdn;
  /// Interned id of `fqdn` in the owning database's DomainTable;
  /// kEmptyDomainId (= unlabeled) until add() assigns it.
  DomainId fqdn_id = kEmptyDomainId;
  /// When the DNS response that produced the label was sniffed; only
  /// meaningful when `fqdn` is non-empty.
  util::Timestamp dns_response_time;
  /// True when the label was already available at the flow's first packet
  /// (the "identify flows before they begin" property).
  bool tagged_at_start = false;

  // Baseline-derived fields, filled by the sniffer at export time so the
  // analyzer does not need to retain payload bytes:
  /// What a DPI box would label the flow (HTTP Host / TLS SNI); empty when
  /// the payload exposes nothing.
  std::string dpi_label;
  /// Leaf-certificate subject CN from the TLS handshake, if one was seen.
  std::string cert_cn;
  /// Leaf-certificate subjectAltName dNSNames.
  std::vector<std::string> cert_san;
  /// True if the server sent a certificate (false for resumed sessions).
  bool has_certificate = false;

  bool labeled() const noexcept { return !fqdn.empty(); }
  /// The organization part of the label ("scholar.google.com"->"google.com").
  std::string_view second_level() const;
};

/// Append-only store with lazily usable secondary indexes. Indexes are
/// built incrementally on add(); queries return stable flow indices.
class FlowDatabase {
 public:
  using FlowIndex = std::uint32_t;

  /// Standalone database with its own private DomainTable.
  FlowDatabase() : table_{std::make_shared<DomainTable>()} {}

  /// Database sharing a caller-owned table (the Sniffer hands its own so
  /// resolver hits and flow labels intern once, and so window rotation
  /// keeps one arena across databases).
  explicit FlowDatabase(std::shared_ptr<DomainTable> table)
      : table_{std::move(table)} {}

  /// Adds a flow and indexes it: the flow's fqdn text is interned into
  /// this database's DomainTable and its view/id rebound to the arena
  /// copy. Returns the flow's index.
  FlowIndex add(TaggedFlow flow);

  /// Moves every flow out and resets the database (indexes included).
  /// The DomainTable is retained — the moved-out flows' fqdn views point
  /// into it, so re-adding them (the merge stage, canonicalize()) stays
  /// valid. Used by the parallel pipeline's merge stage to re-add
  /// per-shard flows in canonical order without copying them.
  std::vector<TaggedFlow> take_flows();

  /// The interner backing this database's fqdn views.
  const std::shared_ptr<DomainTable>& domain_table() const noexcept {
    return table_;
  }

  const std::vector<TaggedFlow>& flows() const noexcept { return flows_; }
  const TaggedFlow& flow(FlowIndex i) const { return flows_.at(i); }
  std::size_t size() const noexcept { return flows_.size(); }

  /// Flows whose label's 2nd-level domain is `sld` (Alg. 2 line 5).
  const std::vector<FlowIndex>& by_second_level(std::string_view sld) const;

  /// Flows labeled exactly `fqdn`.
  const std::vector<FlowIndex>& by_fqdn(std::string_view fqdn) const;

  /// Flows to a given server address (Alg. 3 line 4).
  const std::vector<FlowIndex>& by_server(net::Ipv4Address server) const;

  /// Flows to a given destination (server) port (Alg. 4 line 4).
  const std::vector<FlowIndex>& by_server_port(std::uint16_t port) const;

  // Distinct-value queries return SORTED deduplicated vectors instead of
  // the node-per-element std::set they used to build: one contiguous
  // allocation plus a sort, and FQDNs stay interned 32-bit DomainIds (use
  // fqdn_views() to materialize text at the presentation boundary).

  /// Distinct server IPs observed serving `fqdn`, ascending.
  std::vector<net::Ipv4Address> servers_for_fqdn(
      std::string_view fqdn) const;

  /// Distinct server IPs observed for a whole organization (2LD),
  /// ascending.
  std::vector<net::Ipv4Address> servers_for_second_level(
      std::string_view sld) const;

  /// Distinct FQDNs observed on a server, as interned ids (ascending by
  /// id — an arbitrary but stable order).
  std::vector<DomainId> fqdns_on_server(net::Ipv4Address server) const;

  /// All distinct labels in the database, as interned ids (ascending).
  std::vector<DomainId> distinct_fqdns() const;

  /// Thin string adapter for the id-returning queries: maps each id to
  /// its arena view (valid for the DomainTable's lifetime), sorted
  /// lexicographically — the order the old set<string> API surfaced.
  std::vector<std::string_view> fqdn_views(
      std::span<const DomainId> ids) const;

  /// Ports seen, most flows first.
  std::vector<std::pair<std::uint16_t, std::size_t>> ports_by_flow_count()
      const;

 private:
  std::shared_ptr<DomainTable> table_;
  std::vector<TaggedFlow> flows_;
  // dnh-lint: bounded(take_database) the database grows with its window
  // and is moved out whole on rotation; indexes die with the flows.
  std::unordered_map<DomainId, std::vector<FlowIndex>> fqdn_index_;
  // dnh-lint: bounded(take_database)
  std::unordered_map<DomainId, std::vector<FlowIndex>> sld_index_;
  // dnh-lint: bounded(take_database)
  std::unordered_map<net::Ipv4Address, std::vector<FlowIndex>> server_index_;
  // dnh-lint: bounded(take_database)
  std::map<std::uint16_t, std::vector<FlowIndex>> port_index_;
  static const std::vector<FlowIndex> kEmpty;
};

}  // namespace dnh::core

#include "core/domain_table.hpp"

#include <cstring>
#include <functional>

namespace dnh::core {

namespace {

std::uint64_t hash_bytes(std::string_view s) noexcept {
  return std::hash<std::string_view>{}(s);
}

}  // namespace

DomainTable::DomainTable() {
  slots_.assign(256, kEmptyDomainId);
  mask_ = slots_.size() - 1;
  views_.reserve(128);
  views_.push_back({});  // id 0: the empty string
}

// dnh-analyze: hot
DomainId DomainTable::intern(std::string_view s) {
  // dnh-lint: hot
  if (s.empty()) return kEmptyDomainId;
  std::size_t i = hash_bytes(s) & mask_;
  while (true) {
    const DomainId id = slots_[i];
    if (id == kEmptyDomainId) break;
    if (views_[id] == s) return id;
    i = (i + 1) & mask_;
  }
  // First sight: copy into the arena and claim the probed slot. Ids are
  // dense, so a table would need ~4 billion distinct names to exhaust
  // DomainId — the arena (hundreds of GiB) gives out long before that.
  const DomainId id = static_cast<DomainId>(views_.size());
  views_.push_back(append(s));
  slots_[i] = id;
  // views_.size()-1 live entries (id 0 never occupies a slot); grow at
  // 3/4 load so probe chains stay short.
  if ((views_.size() - 1) * 4 >= slots_.size() * 3) grow_slots();
  return id;
}

std::optional<DomainId> DomainTable::find(std::string_view s) const noexcept {
  if (s.empty()) return kEmptyDomainId;
  std::size_t i = hash_bytes(s) & mask_;
  while (true) {
    const DomainId id = slots_[i];
    if (id == kEmptyDomainId) return std::nullopt;
    if (views_[id] == s) return id;
    i = (i + 1) & mask_;
  }
}

std::string_view DomainTable::append(std::string_view s) {
  if (chunk_cap_ - chunk_used_ < s.size()) {
    // Oversized strings get a dedicated chunk so regular chunks never
    // waste more than one partial tail.
    const std::size_t cap = s.size() > kChunkBytes ? s.size() : kChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
    arena_bytes_ += cap;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  return {dst, s.size()};
}

void DomainTable::grow_slots() {
  std::vector<DomainId> old = std::move(slots_);
  slots_.assign(old.size() * 2, kEmptyDomainId);
  mask_ = slots_.size() - 1;
  for (const DomainId id : old) {
    if (id == kEmptyDomainId) continue;
    std::size_t i = hash_bytes(views_[id]) & mask_;
    while (slots_[i] != kEmptyDomainId) i = (i + 1) & mask_;
    slots_[i] = id;
  }
}

std::vector<DomainId> DomainTable::absorb(const DomainTable& other) {
  std::vector<DomainId> remap(other.views_.size(), kEmptyDomainId);
  for (std::size_t id = 1; id < other.views_.size(); ++id)
    remap[id] = intern(other.views_[id]);
  return remap;
}

}  // namespace dnh::core

#include "core/flowdb.hpp"

#include <algorithm>

#include "dns/domain.hpp"

namespace dnh::core {

const std::vector<FlowDatabase::FlowIndex> FlowDatabase::kEmpty{};

std::string_view TaggedFlow::second_level() const {
  return dns::second_level_domain(fqdn);
}

// dnh-analyze: hot
FlowDatabase::FlowIndex FlowDatabase::add(TaggedFlow flow) {
  // dnh-lint: hot
  const FlowIndex index = static_cast<FlowIndex>(flows_.size());
  // Re-intern: after this, the flow's label lives in OUR arena regardless
  // of where the caller staged it (sniffer scratch, TSV line, another
  // shard's table), and the indexes key on the 32-bit id.
  flow.fqdn_id = table_->intern(flow.fqdn);
  flow.fqdn = table_->view(flow.fqdn_id);
  if (flow.labeled()) {
    fqdn_index_[flow.fqdn_id].push_back(index);
    sld_index_[table_->intern(flow.second_level())].push_back(index);
  }
  server_index_[flow.key.server_ip].push_back(index);
  port_index_[flow.key.server_port].push_back(index);
  flows_.push_back(std::move(flow));
  return index;
}

std::vector<TaggedFlow> FlowDatabase::take_flows() {
  std::vector<TaggedFlow> out = std::move(flows_);
  flows_.clear();
  fqdn_index_.clear();
  sld_index_.clear();
  server_index_.clear();
  port_index_.clear();
  return out;
}

const std::vector<FlowDatabase::FlowIndex>& FlowDatabase::by_second_level(
    std::string_view sld) const {
  const auto id = table_->find(sld);
  if (!id) return kEmpty;
  const auto it = sld_index_.find(*id);
  return it == sld_index_.end() ? kEmpty : it->second;
}

const std::vector<FlowDatabase::FlowIndex>& FlowDatabase::by_fqdn(
    std::string_view fqdn) const {
  const auto id = table_->find(fqdn);
  if (!id) return kEmpty;
  const auto it = fqdn_index_.find(*id);
  return it == fqdn_index_.end() ? kEmpty : it->second;
}

const std::vector<FlowDatabase::FlowIndex>& FlowDatabase::by_server(
    net::Ipv4Address server) const {
  const auto it = server_index_.find(server);
  return it == server_index_.end() ? kEmpty : it->second;
}

const std::vector<FlowDatabase::FlowIndex>& FlowDatabase::by_server_port(
    std::uint16_t port) const {
  const auto it = port_index_.find(port);
  return it == port_index_.end() ? kEmpty : it->second;
}

namespace {

// Collect-sort-unique: one contiguous buffer instead of a red-black node
// per distinct element, and no per-element string copies for FQDNs.
template <typename T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::vector<net::Ipv4Address> FlowDatabase::servers_for_fqdn(
    std::string_view fqdn) const {
  std::vector<net::Ipv4Address> out;
  const auto& indices = by_fqdn(fqdn);
  out.reserve(indices.size());
  for (const auto i : indices) out.push_back(flows_[i].key.server_ip);
  sort_unique(out);
  return out;
}

std::vector<net::Ipv4Address> FlowDatabase::servers_for_second_level(
    std::string_view sld) const {
  std::vector<net::Ipv4Address> out;
  const auto& indices = by_second_level(sld);
  out.reserve(indices.size());
  for (const auto i : indices) out.push_back(flows_[i].key.server_ip);
  sort_unique(out);
  return out;
}

std::vector<DomainId> FlowDatabase::fqdns_on_server(
    net::Ipv4Address server) const {
  std::vector<DomainId> out;
  const auto& indices = by_server(server);
  out.reserve(indices.size());
  for (const auto i : indices) {
    if (flows_[i].labeled()) out.push_back(flows_[i].fqdn_id);
  }
  sort_unique(out);
  return out;
}

std::vector<DomainId> FlowDatabase::distinct_fqdns() const {
  std::vector<DomainId> out;
  out.reserve(fqdn_index_.size());
  for (const auto& [id, _] : fqdn_index_) out.push_back(id);
  std::sort(out.begin(), out.end());  // index keys are already unique
  return out;
}

std::vector<std::string_view> FlowDatabase::fqdn_views(
    std::span<const DomainId> ids) const {
  std::vector<std::string_view> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.push_back(table_->view(id));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::uint16_t, std::size_t>>
FlowDatabase::ports_by_flow_count() const {
  std::vector<std::pair<std::uint16_t, std::size_t>> out;
  out.reserve(port_index_.size());
  for (const auto& [port, flows] : port_index_)
    out.emplace_back(port, flows.size());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace dnh::core

// Long-running deployment support: the paper's sniffer ran live at three
// vantage points "since March 2012" — an append-only FlowDatabase cannot.
// LiveAnalyzer wraps the Sniffer with time-window rotation: completed
// flows land in the current window's database, and when the window rolls
// over the finished database (plus its slice of the DNS log) is handed to
// a sink — to be persisted (flowdb_io), analyzed, and dropped.
#pragma once

#include <functional>
#include <memory>

#include "core/flowdb.hpp"
#include "core/sniffer.hpp"

namespace dnh::core {

/// One rotated window of labeled traffic.
struct AnalysisWindow {
  util::Timestamp start;
  util::Timestamp end;
  FlowDatabase db;
  std::vector<DnsEvent> dns_log;
};

struct LiveConfig {
  SnifferConfig sniffer;
  /// Window length; hourly windows match the paper's per-day analytics
  /// cadence at a manageable size.
  util::Duration window = util::Duration::hours(1);
};

/// A Sniffer whose flow database rotates on window boundaries.
///
/// Usage: feed frames via on_frame(); each time the capture clock crosses
/// a window boundary the completed window is delivered to the sink.
/// finish() flushes open flows and delivers the final partial window.
class LiveAnalyzer {
 public:
  using WindowSink = std::function<void(AnalysisWindow&&)>;

  LiveAnalyzer(LiveConfig config, WindowSink sink);

  /// Feeds one frame; may invoke the sink when the frame's timestamp
  /// enters a new window.
  void on_frame(net::BytesView frame, util::Timestamp ts);

  /// Flushes open flows into the current window and delivers it.
  void finish();

  /// The live flow-start hook passes through to the inner sniffer (policy
  /// decisions are continuous; windows only affect offline storage).
  void set_flow_start_hook(Sniffer::FlowStartHook hook);

  const SnifferStats& stats() const noexcept { return sniffer_->stats(); }
  /// Malformed-input accounting for the whole deployment lifetime (never
  /// reset by window rotation — degradation is a property of the feed,
  /// not of one window).
  const DegradationStats& degradation() const noexcept {
    return sniffer_->degradation();
  }
  std::uint64_t windows_delivered() const noexcept { return windows_; }

 private:
  void rotate(util::Timestamp now);

  // Rotation state is confined to the feeding thread: on_frame()/finish()
  // mutate window_start_/started_/windows_ and move the database out of
  // the sniffer, all on the caller's thread, and the sink runs inline on
  // that same thread. No mutex, so nothing here is DNH_GUARDED_BY; the
  // pipeline gets the same guarantee by giving each worker a private
  // Sniffer and rotating via in-band control items (pipeline.hpp's
  // thread-ownership map). Sharing a LiveAnalyzer across threads is a
  // contract violation, not a supported mode.
  LiveConfig config_;
  WindowSink sink_;
  Sniffer::FlowStartHook hook_;
  std::unique_ptr<Sniffer> sniffer_;
  util::Timestamp window_start_;
  bool started_ = false;
  std::uint64_t windows_ = 0;
};

}  // namespace dnh::core

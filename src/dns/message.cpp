#include "dns/message.hpp"

namespace dnh::dns {
namespace {

constexpr std::size_t kMaxRecordsPerSection = 4096;  // corrupt-count guard

MessageParseError project(NameParseError e) {
  switch (e) {
    case NameParseError::kNone: return MessageParseError::kNone;
    case NameParseError::kTruncated: return MessageParseError::kTruncated;
    case NameParseError::kPointerLoop:
      return MessageParseError::kPointerLoop;
    case NameParseError::kPointerOutOfRange:
      return MessageParseError::kPointerOutOfRange;
    case NameParseError::kBadLabel: return MessageParseError::kBadName;
  }
  return MessageParseError::kBadName;
}

void encode_rdata(const DnsResourceRecord& rr, net::ByteWriter& w,
                  CompressionMap& compression) {
  const std::size_t len_pos = w.size();
  w.write_u16(0);  // RDLENGTH placeholder
  const std::size_t start = w.size();

  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, net::Ipv4Address>) {
          w.write_ipv4(data);
        } else if constexpr (std::is_same_v<T, net::Ipv6Address>) {
          w.write_ipv6(data);
        } else if constexpr (std::is_same_v<T, DnsName>) {
          data.encode(w, compression);
        } else if constexpr (std::is_same_v<T, MxData>) {
          w.write_u16(data.preference);
          data.exchange.encode(w, compression);
        } else if constexpr (std::is_same_v<T, SrvData>) {
          w.write_u16(data.priority);
          w.write_u16(data.weight);
          w.write_u16(data.port);
          // RFC 2782: SRV targets must not be compressed.
          data.target.encode(w);
        } else if constexpr (std::is_same_v<T, SoaData>) {
          data.mname.encode(w, compression);
          data.rname.encode(w, compression);
          w.write_u32(data.serial);
          w.write_u32(data.refresh);
          w.write_u32(data.retry);
          w.write_u32(data.expire);
          w.write_u32(data.minimum);
        } else if constexpr (std::is_same_v<T, TxtData>) {
          for (const auto& s : data.strings) {
            w.write_u8(static_cast<std::uint8_t>(
                std::min<std::size_t>(s.size(), 255)));
            w.write_string(std::string_view{s}.substr(0, 255));
          }
        } else {  // raw bytes
          w.write_bytes(net::BytesView{data});
        }
      },
      rr.rdata);

  w.patch_u16(len_pos, static_cast<std::uint16_t>(w.size() - start));
}

std::optional<Rdata> decode_rdata(RecordType type, net::ByteReader& r,
                                  std::size_t rdlength,
                                  MessageParseError& error) {
  const std::size_t end = r.position() + rdlength;
  if (end > r.buffer().size()) {
    error = MessageParseError::kTruncated;
    return std::nullopt;
  }

  auto finish = [&](Rdata value) -> std::optional<Rdata> {
    if (!r.ok() || r.position() > end) {
      error = MessageParseError::kTruncated;
      return std::nullopt;
    }
    r.seek(end);
    return value;
  };
  auto name_failed = [&](NameParseError e) {
    error = project(e);
    return std::nullopt;
  };
  NameParseError ne = NameParseError::kNone;

  switch (type) {
    case RecordType::kA: {
      if (rdlength != 4) {
        error = MessageParseError::kTruncated;
        return std::nullopt;
      }
      return finish(r.read_ipv4());
    }
    case RecordType::kAaaa: {
      if (rdlength != 16) {
        error = MessageParseError::kTruncated;
        return std::nullopt;
      }
      return finish(r.read_ipv6());
    }
    case RecordType::kCname:
    case RecordType::kNs:
    case RecordType::kPtr: {
      auto name = DnsName::decode(r, ne);
      if (!name) return name_failed(ne);
      return finish(std::move(*name));
    }
    case RecordType::kMx: {
      MxData mx;
      mx.preference = r.read_u16();
      auto name = DnsName::decode(r, ne);
      if (!name) return name_failed(ne);
      mx.exchange = std::move(*name);
      return finish(std::move(mx));
    }
    case RecordType::kSrv: {
      SrvData srv;
      srv.priority = r.read_u16();
      srv.weight = r.read_u16();
      srv.port = r.read_u16();
      auto name = DnsName::decode(r, ne);
      if (!name) return name_failed(ne);
      srv.target = std::move(*name);
      return finish(std::move(srv));
    }
    case RecordType::kSoa: {
      SoaData soa;
      auto mname = DnsName::decode(r, ne);
      if (!mname) return name_failed(ne);
      auto rname = DnsName::decode(r, ne);
      if (!rname) return name_failed(ne);
      soa.mname = std::move(*mname);
      soa.rname = std::move(*rname);
      soa.serial = r.read_u32();
      soa.refresh = r.read_u32();
      soa.retry = r.read_u32();
      soa.expire = r.read_u32();
      soa.minimum = r.read_u32();
      return finish(std::move(soa));
    }
    case RecordType::kTxt: {
      TxtData txt;
      while (r.ok() && r.position() < end) {
        const std::uint8_t len = r.read_u8();
        if (r.position() + len > end) {
          error = MessageParseError::kTruncated;
          return std::nullopt;
        }
        txt.strings.push_back(r.read_string(len));
      }
      return finish(std::move(txt));
    }
  }
  // Unknown type: preserve raw bytes.
  const net::BytesView raw = r.read_bytes(rdlength);
  if (!r.ok()) {
    error = MessageParseError::kTruncated;
    return std::nullopt;
  }
  return Rdata{net::Bytes{raw.begin(), raw.end()}};
}

std::optional<DnsResourceRecord> decode_rr(net::ByteReader& r,
                                           MessageParseError& error) {
  DnsResourceRecord rr;
  NameParseError ne = NameParseError::kNone;
  auto name = DnsName::decode(r, ne);
  if (!name) {
    error = project(ne);
    return std::nullopt;
  }
  rr.name = std::move(*name);
  rr.type = static_cast<RecordType>(r.read_u16());
  rr.cls = static_cast<RecordClass>(r.read_u16());
  rr.ttl = r.read_u32();
  const std::uint16_t rdlength = r.read_u16();
  if (!r.ok()) {
    error = MessageParseError::kTruncated;
    return std::nullopt;
  }
  auto rdata = decode_rdata(rr.type, r, rdlength, error);
  if (!rdata) return std::nullopt;
  rr.rdata = std::move(*rdata);
  return rr;
}

}  // namespace

std::optional<net::Ipv4Address> DnsResourceRecord::a() const {
  if (type != RecordType::kA) return std::nullopt;
  if (const auto* addr = std::get_if<net::Ipv4Address>(&rdata)) return *addr;
  return std::nullopt;
}

std::optional<DnsName> DnsResourceRecord::cname_target() const {
  if (type != RecordType::kCname) return std::nullopt;
  if (const auto* target = std::get_if<DnsName>(&rdata)) return *target;
  return std::nullopt;
}

net::Bytes DnsMessage::encode() const {
  net::ByteWriter w;
  CompressionMap compression;

  w.write_u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((opcode & 0x0f) << 11);
  if (authoritative) flags |= 0x0400;
  if (truncated) flags |= 0x0200;
  if (recursion_desired) flags |= 0x0100;
  if (recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(rcode) & 0x0f;
  w.write_u16(flags);
  w.write_u16(static_cast<std::uint16_t>(questions.size()));
  w.write_u16(static_cast<std::uint16_t>(answers.size()));
  w.write_u16(static_cast<std::uint16_t>(authorities.size()));
  w.write_u16(static_cast<std::uint16_t>(additionals.size()));

  for (const auto& q : questions) {
    q.name.encode(w, compression);
    w.write_u16(static_cast<std::uint16_t>(q.type));
    w.write_u16(static_cast<std::uint16_t>(q.cls));
  }
  for (const auto* section : {&answers, &authorities, &additionals}) {
    for (const auto& rr : *section) {
      rr.name.encode(w, compression);
      w.write_u16(static_cast<std::uint16_t>(rr.type));
      w.write_u16(static_cast<std::uint16_t>(rr.cls));
      w.write_u32(rr.ttl);
      encode_rdata(rr, w, compression);
    }
  }
  return w.take();
}

std::optional<DnsMessage> DnsMessage::decode(net::BytesView wire) {
  MessageParseError error = MessageParseError::kNone;
  return decode(wire, error);
}

std::optional<DnsMessage> DnsMessage::decode(net::BytesView wire,
                                             MessageParseError& error) {
  error = MessageParseError::kNone;
  net::ByteReader r{wire};
  DnsMessage msg;

  msg.id = r.read_u16();
  const std::uint16_t flags = r.read_u16();
  msg.is_response = (flags & 0x8000) != 0;
  msg.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0f);
  msg.authoritative = (flags & 0x0400) != 0;
  msg.truncated = (flags & 0x0200) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.recursion_available = (flags & 0x0080) != 0;
  msg.rcode = static_cast<Rcode>(flags & 0x0f);

  const std::uint16_t qd = r.read_u16();
  const std::uint16_t an = r.read_u16();
  const std::uint16_t ns = r.read_u16();
  const std::uint16_t ar = r.read_u16();
  if (!r.ok()) {
    error = MessageParseError::kTruncated;
    return std::nullopt;
  }
  if (std::size_t{qd} + an + ns + ar > kMaxRecordsPerSection) {
    error = MessageParseError::kCountLie;
    return std::nullopt;
  }

  for (std::uint16_t i = 0; i < qd; ++i) {
    DnsQuestion q;
    NameParseError ne = NameParseError::kNone;
    auto name = DnsName::decode(r, ne);
    if (!name) {
      error = project(ne);
      return std::nullopt;
    }
    q.name = std::move(*name);
    q.type = static_cast<RecordType>(r.read_u16());
    q.cls = static_cast<RecordClass>(r.read_u16());
    if (!r.ok()) {
      error = MessageParseError::kTruncated;
      return std::nullopt;
    }
    msg.questions.push_back(std::move(q));
  }
  const std::uint16_t counts[3] = {an, ns, ar};
  std::vector<DnsResourceRecord>* sections[3] = {
      &msg.answers, &msg.authorities, &msg.additionals};
  for (int s = 0; s < 3; ++s) {
    for (std::uint16_t i = 0; i < counts[s]; ++i) {
      auto rr = decode_rr(r, error);
      if (!rr) return std::nullopt;
      sections[s]->push_back(std::move(*rr));
    }
  }
  return msg;
}

std::vector<net::Ipv4Address> DnsMessage::answer_addresses() const {
  std::vector<net::Ipv4Address> out;
  for (const auto& rr : answers) {
    if (const auto addr = rr.a()) out.push_back(*addr);
  }
  return out;
}

DnsName DnsMessage::canonical_query_name() const {
  if (questions.empty()) return {};
  return questions.front().name;
}

DnsMessage make_query(std::uint16_t id, const DnsName& fqdn,
                      RecordType type) {
  DnsMessage msg;
  msg.id = id;
  msg.is_response = false;
  msg.questions.push_back({fqdn, type, RecordClass::kIn});
  return msg;
}

DnsMessage make_a_response(std::uint16_t id, const DnsName& fqdn,
                           const std::vector<net::Ipv4Address>& addresses,
                           std::uint32_t ttl,
                           const std::optional<DnsName>& cname) {
  DnsMessage msg;
  msg.id = id;
  msg.is_response = true;
  msg.questions.push_back({fqdn, RecordType::kA, RecordClass::kIn});

  const DnsName& owner = cname ? *cname : fqdn;
  if (cname) {
    DnsResourceRecord rr;
    rr.name = fqdn;
    rr.type = RecordType::kCname;
    rr.ttl = ttl;
    rr.rdata = *cname;
    msg.answers.push_back(std::move(rr));
  }
  for (const auto addr : addresses) {
    DnsResourceRecord rr;
    rr.name = owner;
    rr.type = RecordType::kA;
    rr.ttl = ttl;
    rr.rdata = addr;
    msg.answers.push_back(std::move(rr));
  }
  if (addresses.empty() && !cname) msg.rcode = Rcode::kNxDomain;
  return msg;
}

DnsMessage make_ptr_response(std::uint16_t id, net::Ipv4Address address,
                             const std::optional<DnsName>& target,
                             std::uint32_t ttl) {
  DnsMessage msg;
  msg.id = id;
  msg.is_response = true;
  const auto qname = DnsName::from_string(address.reverse_name());
  msg.questions.push_back({*qname, RecordType::kPtr, RecordClass::kIn});
  if (target) {
    DnsResourceRecord rr;
    rr.name = *qname;
    rr.type = RecordType::kPtr;
    rr.ttl = ttl;
    rr.rdata = *target;
    msg.answers.push_back(std::move(rr));
  } else {
    msg.rcode = Rcode::kNxDomain;
  }
  return msg;
}

}  // namespace dnh::dns

#include "dns/domain.hpp"

#include <array>

#include "util/strings.hpp"

namespace dnh::dns {
namespace {

// Two-label public suffixes that occur in the traces we model. A full
// public-suffix list is overkill for label analytics; unlisted two-label
// suffixes degrade gracefully (the 2LD is just one label shorter).
constexpr std::array<std::string_view, 12> kTwoLabelSuffixes{
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.br", "com.au",
    "co.jp", "co.kr", "com.cn", "com.tr", "co.in", "com.mx",
};

/// Position of the label that starts the effective TLD, or npos.
std::size_t tld_start(std::string_view fqdn) {
  const std::size_t last_dot = fqdn.rfind('.');
  if (last_dot == std::string_view::npos) return std::string_view::npos;
  const std::size_t prev_dot = fqdn.rfind('.', last_dot - 1);
  if (prev_dot != std::string_view::npos) {
    const std::string_view two = fqdn.substr(prev_dot + 1);
    for (const auto suffix : kTwoLabelSuffixes) {
      if (util::iequals(two, suffix)) return prev_dot + 1;
    }
  }
  return last_dot + 1;
}

}  // namespace

std::string_view effective_tld(std::string_view fqdn) {
  const std::size_t start = tld_start(fqdn);
  if (start == std::string_view::npos) return {};
  return fqdn.substr(start);
}

std::string_view second_level_domain(std::string_view fqdn) {
  const std::size_t start = tld_start(fqdn);
  if (start == std::string_view::npos) return fqdn;
  // The label immediately before the TLD.
  if (start < 2) return fqdn;  // degenerate ".com"
  const std::size_t dot_before = fqdn.rfind('.', start - 2);
  if (dot_before == std::string_view::npos) return fqdn;
  return fqdn.substr(dot_before + 1);
}

std::string_view subdomain_part(std::string_view fqdn) {
  const std::string_view sld = second_level_domain(fqdn);
  if (sld.size() >= fqdn.size()) return {};
  return fqdn.substr(0, fqdn.size() - sld.size() - 1);
}

}  // namespace dnh::dns

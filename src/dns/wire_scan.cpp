#include "dns/wire_scan.hpp"

#include <cctype>
#include <cstdint>
#include <optional>

namespace dnh::dns {
namespace {

// Bounds mirrored from name.cpp / message.cpp — the scanner must agree
// with the full codec on every accept/reject decision.
constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameLength = 253;   // presentation characters
constexpr int kMaxPointerJumps = 64;          // loop guard
constexpr std::size_t kMaxRecordsPerSection = 4096;  // corrupt-count guard

MessageParseError project(NameParseError e) {
  switch (e) {
    case NameParseError::kNone: return MessageParseError::kNone;
    case NameParseError::kTruncated: return MessageParseError::kTruncated;
    case NameParseError::kPointerLoop:
      return MessageParseError::kPointerLoop;
    case NameParseError::kPointerOutOfRange:
      return MessageParseError::kPointerOutOfRange;
    case NameParseError::kBadLabel: return MessageParseError::kBadName;
  }
  return MessageParseError::kBadName;
}

// Mirrors DnsName::decode step for step. When `out` is non-null the
// lowercased presentation form (labels joined by '.') is written there and
// `*out_len` set; when null the name is validated and skipped only.
// dnh-analyze: hot
bool scan_name(net::ByteReader& r, NameParseError& error, char* out,
               std::size_t* out_len) {
  // dnh-lint: hot
  error = NameParseError::kNone;
  std::size_t total = 0;
  std::size_t written = 0;
  int jumps = 0;
  // Position to restore after the first pointer: a compressed name occupies
  // only the bytes up to and including the first pointer.
  std::optional<std::size_t> resume;

  while (true) {
    const std::uint8_t len = r.read_u8();
    if (!r.ok()) {
      error = NameParseError::kTruncated;
      return false;
    }
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      const std::uint8_t low = r.read_u8();
      if (!r.ok()) {
        error = NameParseError::kTruncated;
        return false;
      }
      if (++jumps > kMaxPointerJumps) {
        error = NameParseError::kPointerLoop;
        return false;
      }
      if (!resume) resume = r.position();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      if (target >= r.buffer().size()) {
        error = NameParseError::kPointerOutOfRange;
        return false;
      }
      r.seek(target);
      continue;
    }
    if ((len & 0xc0) != 0) {
      error = NameParseError::kBadLabel;  // 0x40/0x80: reserved
      return false;
    }
    if (len > kMaxLabelLength) {
      error = NameParseError::kBadLabel;
      return false;
    }
    const net::BytesView label = r.read_bytes(len);
    if (!r.ok()) {
      error = NameParseError::kTruncated;
      return false;
    }
    total += label.size() + 1;
    if (total > kMaxNameLength + 1) {
      error = NameParseError::kBadLabel;
      return false;
    }
    if (out) {
      // total <= 254 guarantees written stays <= 253 < sizeof scratch.
      if (written != 0) out[written++] = '.';
      for (const std::uint8_t b : label)
        out[written++] = static_cast<char>(
            std::tolower(static_cast<unsigned char>(b)));
    }
  }
  if (resume) r.seek(*resume);
  if (out_len) *out_len = written;
  return true;
}

// Mirrors decode_rdata. For answer-section A records (`collect` non-null)
// the address is appended; everything else is validated and skipped.
// dnh-analyze: hot
bool scan_rdata(RecordType type, net::ByteReader& r, std::size_t rdlength,
                std::vector<net::Ipv4Address>* collect,
                MessageParseError& error) {
  // dnh-lint: hot
  const std::size_t end = r.position() + rdlength;
  if (end > r.buffer().size()) {
    error = MessageParseError::kTruncated;
    return false;
  }

  auto finish = [&] {
    if (!r.ok() || r.position() > end) {
      error = MessageParseError::kTruncated;
      return false;
    }
    r.seek(end);
    return true;
  };
  auto name_failed = [&](NameParseError e) {
    error = project(e);
    return false;
  };
  NameParseError ne = NameParseError::kNone;

  switch (type) {
    case RecordType::kA: {
      if (rdlength != 4) {
        error = MessageParseError::kTruncated;
        return false;
      }
      const net::Ipv4Address addr = r.read_ipv4();
      if (!finish()) return false;
      if (collect) collect->push_back(addr);
      return true;
    }
    case RecordType::kAaaa: {
      if (rdlength != 16) {
        error = MessageParseError::kTruncated;
        return false;
      }
      r.skip(16);
      return finish();
    }
    case RecordType::kCname:
    case RecordType::kNs:
    case RecordType::kPtr: {
      if (!scan_name(r, ne, nullptr, nullptr)) return name_failed(ne);
      return finish();
    }
    case RecordType::kMx: {
      r.skip(2);  // preference
      if (!scan_name(r, ne, nullptr, nullptr)) return name_failed(ne);
      return finish();
    }
    case RecordType::kSrv: {
      r.skip(6);  // priority, weight, port
      if (!scan_name(r, ne, nullptr, nullptr)) return name_failed(ne);
      return finish();
    }
    case RecordType::kSoa: {
      if (!scan_name(r, ne, nullptr, nullptr)) return name_failed(ne);
      if (!scan_name(r, ne, nullptr, nullptr)) return name_failed(ne);
      r.skip(20);  // serial, refresh, retry, expire, minimum
      return finish();
    }
    case RecordType::kTxt: {
      while (r.ok() && r.position() < end) {
        const std::uint8_t len = r.read_u8();
        if (r.position() + len > end) {
          error = MessageParseError::kTruncated;
          return false;
        }
        r.skip(len);
      }
      return finish();
    }
  }
  // Unknown type: skip the raw bytes.
  r.skip(rdlength);
  if (!r.ok()) {
    error = MessageParseError::kTruncated;
    return false;
  }
  return true;
}

// Mirrors decode_rr. `collect` is non-null only for the answer section.
// dnh-analyze: hot
bool scan_rr(net::ByteReader& r, std::vector<net::Ipv4Address>* collect,
             MessageParseError& error) {
  // dnh-lint: hot
  NameParseError ne = NameParseError::kNone;
  if (!scan_name(r, ne, nullptr, nullptr)) {
    error = project(ne);
    return false;
  }
  const auto type = static_cast<RecordType>(r.read_u16());
  r.skip(2);  // class
  r.skip(4);  // ttl
  const std::uint16_t rdlength = r.read_u16();
  if (!r.ok()) {
    error = MessageParseError::kTruncated;
    return false;
  }
  return scan_rdata(type, r, rdlength, collect, error);
}

}  // namespace

// dnh-analyze: hot
bool scan_response(net::BytesView wire, ResponseScratch& out,
                   MessageParseError& error) {
  // dnh-lint: hot
  error = MessageParseError::kNone;
  out.is_response = false;
  out.name_len = 0;
  out.addresses.clear();

  net::ByteReader r{wire};
  r.skip(2);  // id
  const std::uint16_t flags = r.read_u16();
  const std::uint16_t qd = r.read_u16();
  const std::uint16_t an = r.read_u16();
  const std::uint16_t ns = r.read_u16();
  const std::uint16_t ar = r.read_u16();
  if (!r.ok()) {
    error = MessageParseError::kTruncated;
    return false;
  }
  if (std::size_t{qd} + an + ns + ar > kMaxRecordsPerSection) {
    error = MessageParseError::kCountLie;
    return false;
  }
  out.is_response = (flags & 0x8000) != 0;

  for (std::uint16_t i = 0; i < qd; ++i) {
    NameParseError ne = NameParseError::kNone;
    // Only the first question is the canonical query name; the rest are
    // validated and skipped, as decode stores but the sniffer ignores them.
    char* name_out = i == 0 ? out.name.data() : nullptr;
    std::size_t* len_out = i == 0 ? &out.name_len : nullptr;
    if (!scan_name(r, ne, name_out, len_out)) {
      error = project(ne);
      return false;
    }
    r.skip(2);  // qtype
    r.skip(2);  // qclass
    if (!r.ok()) {
      error = MessageParseError::kTruncated;
      return false;
    }
  }
  const std::uint16_t counts[3] = {an, ns, ar};
  for (int s = 0; s < 3; ++s) {
    std::vector<net::Ipv4Address>* collect = s == 0 ? &out.addresses : nullptr;
    for (std::uint16_t i = 0; i < counts[s]; ++i) {
      if (!scan_rr(r, collect, error)) return false;
    }
  }
  return true;
}

}  // namespace dnh::dns

// DNS message codec (RFC 1035 wire format).
//
// Covers the record types observed in the paper's traces and needed by the
// system: A, AAAA, CNAME, NS, PTR, MX, TXT, SOA, SRV; unknown types round-
// trip as raw RDATA. Both encode (for the trace generator and the active
// reverse-lookup baseline) and decode (for the DNS Response Sniffer).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace dnh::dns {

/// DNS resource record types (subset, values per IANA registry).
enum class RecordType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kSrv = 33,
};

/// DNS classes; only IN is used in practice.
enum class RecordClass : std::uint16_t { kIn = 1 };

/// Response codes (subset).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
};

/// The well-known DNS UDP port.
inline constexpr std::uint16_t kDnsPort = 53;

/// Why a wire message failed to decode; the message-level projection of
/// NameParseError plus structural failures of its own. Consumed by the
/// sniffer's degradation accounting to tell hostile inputs (pointer games,
/// count lies) from capture artifacts (truncation).
enum class MessageParseError {
  kNone = 0,
  kTruncated,          ///< header/record/RDATA ran past the buffer
  kCountLie,           ///< section counts fail the sanity bound
  kPointerLoop,        ///< name compression pointer cycle
  kPointerOutOfRange,  ///< name compression pointer beyond the message
  kBadName,            ///< reserved label type / RFC limits blown
};

struct MxData {
  std::uint16_t preference = 0;
  DnsName exchange;
  bool operator==(const MxData&) const = default;
};

struct SrvData {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  DnsName target;
  bool operator==(const SrvData&) const = default;
};

struct SoaData {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;
  bool operator==(const SoaData&) const = default;
};

struct TxtData {
  std::vector<std::string> strings;
  bool operator==(const TxtData&) const = default;
};

/// Typed RDATA. `net::Bytes` holds unknown record types verbatim.
using Rdata = std::variant<net::Ipv4Address,  // A
                           net::Ipv6Address,  // AAAA
                           DnsName,           // CNAME / NS / PTR
                           MxData, SrvData, SoaData, TxtData,
                           net::Bytes>;  // unknown types

struct DnsQuestion {
  DnsName name;
  RecordType type = RecordType::kA;
  RecordClass cls = RecordClass::kIn;
  bool operator==(const DnsQuestion&) const = default;
};

struct DnsResourceRecord {
  DnsName name;
  RecordType type = RecordType::kA;
  RecordClass cls = RecordClass::kIn;
  std::uint32_t ttl = 0;
  Rdata rdata;
  bool operator==(const DnsResourceRecord&) const = default;

  /// Convenience accessors; nullopt when the RDATA is a different type.
  std::optional<net::Ipv4Address> a() const;
  std::optional<DnsName> cname_target() const;
};

/// A full DNS message (header + four sections).
struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  bool authoritative = false;
  bool truncated = false;
  bool recursion_desired = true;
  bool recursion_available = true;
  Rcode rcode = Rcode::kNoError;

  std::vector<DnsQuestion> questions;
  std::vector<DnsResourceRecord> answers;
  std::vector<DnsResourceRecord> authorities;
  std::vector<DnsResourceRecord> additionals;

  /// Encodes to wire format with name compression.
  net::Bytes encode() const;

  /// Decodes a wire-format message; nullopt on any malformed content
  /// (bad compression pointers, truncated sections, inconsistent counts).
  static std::optional<DnsMessage> decode(net::BytesView wire);

  /// As above, classifying the failure (kNone on success).
  static std::optional<DnsMessage> decode(net::BytesView wire,
                                          MessageParseError& error);

  /// All IPv4 addresses among the answers (what the DNS Resolver stores).
  std::vector<net::Ipv4Address> answer_addresses() const;

  /// Follows CNAME records from the question name to the final queried
  /// alias; returns the question name when there is no CNAME chain.
  DnsName canonical_query_name() const;
};

/// Builds a standard A-record response: `fqdn` -> `addresses`, optional
/// CNAME chain hop inserted before the A records (as CDNs commonly answer).
DnsMessage make_a_response(std::uint16_t id, const DnsName& fqdn,
                           const std::vector<net::Ipv4Address>& addresses,
                           std::uint32_t ttl,
                           const std::optional<DnsName>& cname = std::nullopt);

/// Builds the matching query for a response builder above.
DnsMessage make_query(std::uint16_t id, const DnsName& fqdn,
                      RecordType type = RecordType::kA);

/// Builds a PTR response for a reverse lookup (empty target = NXDOMAIN).
DnsMessage make_ptr_response(std::uint16_t id, net::Ipv4Address address,
                             const std::optional<DnsName>& target,
                             std::uint32_t ttl = 3600);

}  // namespace dnh::dns

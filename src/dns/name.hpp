// DNS domain names: label sequences with RFC 1035 wire encoding, including
// message compression (pointer) support on both encode and decode.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/bytes.hpp"

namespace dnh::dns {

/// Offsets of already-encoded name suffixes within a message, used to emit
/// compression pointers. One map instance spans one whole DNS message.
using CompressionMap = std::map<std::string, std::uint16_t>;

/// Why a wire-format name failed to decode. Degraded-mode accounting keys
/// off these: a pointer loop is an adversarial signature, a truncated name
/// usually just means a short snaplen.
enum class NameParseError {
  kNone = 0,
  kTruncated,          ///< buffer ended inside the name
  kPointerLoop,        ///< compression pointers exceeded the jump budget
  kPointerOutOfRange,  ///< pointer target beyond the message
  kBadLabel,           ///< reserved label type or RFC length limits blown
};

/// A domain name as an ordered list of labels (no trailing root label).
///
/// Names are canonicalized to lower case on construction: DNS names compare
/// case-insensitively and the resolver keys on them.
class DnsName {
 public:
  DnsName() = default;

  /// Parses presentation format ("www.example.com", trailing dot allowed).
  /// Returns nullopt on empty labels, labels > 63 bytes, or total length
  /// > 253 characters.
  static std::optional<DnsName> from_string(std::string_view s);

  /// Decodes wire format from `r` (which must be positioned at the name
  /// within the full message buffer — compression pointers reference
  /// absolute message offsets). Enforces RFC limits and rejects pointer
  /// loops. On success the reader is positioned just past the name.
  static std::optional<DnsName> decode(net::ByteReader& r);

  /// As above, reporting the failure class in `error` (kNone on success).
  static std::optional<DnsName> decode(net::ByteReader& r,
                                       NameParseError& error);

  /// Encodes to wire format, emitting compression pointers for suffixes
  /// already present in `compression` and registering new suffix offsets.
  void encode(net::ByteWriter& w, CompressionMap& compression) const;

  /// Encodes without compression.
  void encode(net::ByteWriter& w) const;

  /// Presentation format, e.g. "www.example.com" ("." for the root).
  std::string to_string() const;

  const std::vector<std::string>& labels() const noexcept { return labels_; }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }

  auto operator<=>(const DnsName&) const = default;

 private:
  std::vector<std::string> labels_;
};

}  // namespace dnh::dns

#include "dns/name.hpp"

#include "util/strings.hpp"

namespace dnh::dns {
namespace {

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameLength = 253;   // presentation characters
constexpr int kMaxPointerJumps = 64;          // loop guard
constexpr std::uint16_t kMaxPointerOffset = 0x3fff;

std::string joined_suffix(const std::vector<std::string>& labels,
                          std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < labels.size(); ++i) {
    if (i > from) out += '.';
    out += labels[i];
  }
  return out;
}

}  // namespace

std::optional<DnsName> DnsName::from_string(std::string_view s) {
  if (!s.empty() && s.back() == '.') s.remove_suffix(1);
  DnsName name;
  if (s.empty()) return name;  // root
  if (s.size() > kMaxNameLength) return std::nullopt;
  for (const auto label : util::split(s, '.')) {
    if (label.empty() || label.size() > kMaxLabelLength) return std::nullopt;
    name.labels_.push_back(util::to_lower(label));
  }
  return name;
}

std::optional<DnsName> DnsName::decode(net::ByteReader& r) {
  NameParseError error = NameParseError::kNone;
  return decode(r, error);
}

std::optional<DnsName> DnsName::decode(net::ByteReader& r,
                                       NameParseError& error) {
  error = NameParseError::kNone;
  DnsName name;
  std::size_t total = 0;
  int jumps = 0;
  // Position to restore after the first pointer: a compressed name occupies
  // only the bytes up to and including the first pointer.
  std::optional<std::size_t> resume;

  auto fail = [&](NameParseError e) {
    error = e;
    return std::nullopt;
  };

  while (true) {
    const std::uint8_t len = r.read_u8();
    if (!r.ok()) return fail(NameParseError::kTruncated);
    if (len == 0) break;
    if ((len & 0xc0) == 0xc0) {
      const std::uint8_t low = r.read_u8();
      if (!r.ok()) return fail(NameParseError::kTruncated);
      if (++jumps > kMaxPointerJumps)
        return fail(NameParseError::kPointerLoop);
      if (!resume) resume = r.position();
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | low;
      if (target >= r.buffer().size())
        return fail(NameParseError::kPointerOutOfRange);
      r.seek(target);
      continue;
    }
    if ((len & 0xc0) != 0)
      return fail(NameParseError::kBadLabel);  // 0x40/0x80: reserved
    if (len > kMaxLabelLength) return fail(NameParseError::kBadLabel);
    const std::string label = r.read_string(len);
    if (!r.ok()) return fail(NameParseError::kTruncated);
    total += label.size() + 1;
    if (total > kMaxNameLength + 1) return fail(NameParseError::kBadLabel);
    name.labels_.push_back(util::to_lower(label));
  }
  if (resume) r.seek(*resume);
  return name;
}

void DnsName::encode(net::ByteWriter& w, CompressionMap& compression) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const std::string suffix = joined_suffix(labels_, i);
    const auto it = compression.find(suffix);
    if (it != compression.end()) {
      w.write_u16(static_cast<std::uint16_t>(0xc000 | it->second));
      return;
    }
    if (w.size() <= kMaxPointerOffset)
      compression.emplace(suffix, static_cast<std::uint16_t>(w.size()));
    w.write_u8(static_cast<std::uint8_t>(labels_[i].size()));
    w.write_string(labels_[i]);
  }
  w.write_u8(0);
}

void DnsName::encode(net::ByteWriter& w) const {
  for (const auto& label : labels_) {
    w.write_u8(static_cast<std::uint8_t>(label.size()));
    w.write_string(label);
  }
  w.write_u8(0);
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

}  // namespace dnh::dns

// Zero-allocation DNS response scanner for the sniffer hot path.
//
// `DnsMessage::decode` materializes every label, question and record as
// owned strings/vectors — correct and convenient for the trace generator
// and tests, but the sniffer only needs three facts per message: is it a
// response, what is the canonical query name, and which IPv4 addresses do
// the answers carry. `scan_response` extracts exactly those into a
// caller-owned `ResponseScratch` whose buffers are reused across messages,
// so steady state decodes allocate nothing.
//
// Contract: scan_response accepts and rejects EXACTLY the wire bytes that
// `DnsMessage::decode` accepts and rejects, and classifies failures with
// the same `MessageParseError` — the sniffer's degraded-mode accounting
// must not change depending on which decoder ran. Every bound here
// (section-count lie, label/name length, pointer-jump budget) mirrors the
// full codec; tests/test_wire_scan.cpp differentially fuzzes the two.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "dns/message.hpp"
#include "net/bytes.hpp"
#include "net/ip.hpp"

namespace dnh::dns {

/// Reusable output buffers for scan_response. Construct once per sniffer
/// (or per shard) and pass to every call; `addresses` keeps its capacity
/// across messages so steady-state scans never touch the heap.
struct ResponseScratch {
  /// QR flag from the header; only meaningful when scan_response returned
  /// true (the whole message parsed).
  bool is_response = false;

  /// Canonical query name (first question), lowercased presentation form
  /// without trailing dot. name_len == 0 encodes the root / no-question
  /// case (what DnsName::to_string renders as "."). 253 presentation
  /// characters is the RFC ceiling; 255 keeps the array round.
  std::array<char, 255> name{};
  std::size_t name_len = 0;

  /// IPv4 addresses of the answer-section A records, in wire order.
  std::vector<net::Ipv4Address> addresses;

  std::string_view name_view() const noexcept {
    return {name.data(), name_len};
  }
};

/// Scans a wire-format DNS message, filling `out` with the response bits
/// the sniffer needs. Returns true iff `DnsMessage::decode` would have
/// succeeded on the same bytes; on failure `error` carries the same
/// classification decode would have reported. Allocates nothing beyond
/// `out.addresses` growth (which amortizes to zero across calls).
bool scan_response(net::BytesView wire, ResponseScratch& out,
                   MessageParseError& error);

}  // namespace dnh::dns

// Domain-name structure helpers: TLD / second-level-domain extraction as
// the paper uses them ("we refer to the first sub-domain after the TLD as
// second level domain", Sec. 2.2), with a small embedded public-suffix list
// so "bbc.co.uk" yields "bbc.co.uk" rather than "co.uk".
#pragma once

#include <string>
#include <string_view>

namespace dnh::dns {

/// Effective TLD of `fqdn` ("com", "co.uk"); empty for single-label names.
std::string_view effective_tld(std::string_view fqdn);

/// Second-level domain: the organization part, e.g.
/// "www.example.com" -> "example.com"; "a.b.example.co.uk" ->
/// "example.co.uk". Returns `fqdn` itself when it has no sub-domain depth.
std::string_view second_level_domain(std::string_view fqdn);

/// The sub-domain labels before the second-level domain
/// ("smtp2.mail.google.com" -> "smtp2.mail"); empty when none.
std::string_view subdomain_part(std::string_view fqdn);

}  // namespace dnh::dns

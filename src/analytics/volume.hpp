// Traffic-volume breakdown by DNS name hierarchy — the "TreeTop"-style
// view of the paper's related work ([12-13], Plonka & Barford): what share
// of bytes/flows goes to .com, to google.com, to an arbitrary label depth.
// DN-Hunter computes it directly from the labeled flow database.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flowdb.hpp"

namespace dnh::analytics {

struct VolumeRow {
  std::string name;  ///< TLD, 2LD, or deeper label path
  std::uint64_t flows = 0;
  std::uint64_t bytes = 0;       ///< both directions
  double byte_share = 0.0;       ///< of all LABELED traffic
};

struct VolumeReport {
  std::uint64_t total_flows = 0;       ///< labeled flows
  std::uint64_t total_bytes = 0;
  std::uint64_t unlabeled_flows = 0;
  std::uint64_t unlabeled_bytes = 0;
  std::vector<VolumeRow> rows;         ///< ranked by bytes
};

/// Aggregation depth: 1 = effective TLD ("com"), 2 = organization
/// ("google.com"), 3 = one more label ("mail.google.com"), ...
VolumeReport traffic_by_domain(const core::FlowDatabase& db, int depth,
                               std::size_t top_k = 20);

/// Byte/flow shares per protocol class (HTTP/TLS/P2P/...), labeled and
/// unlabeled together — the operator's first question about a link.
std::vector<std::pair<flow::ProtocolClass, VolumeRow>> traffic_by_protocol(
    const core::FlowDatabase& db);

}  // namespace dnh::analytics

// Content Discovery (paper Sec. 4.2, Algorithm 3): what a CDN or cloud
// provider hosts — the inverse of spatial discovery. Backs Table 5 (top
// domains on Amazon EC2) and Fig. 5's per-CDN FQDN counts.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/flowdb.hpp"
#include "net/ip.hpp"
#include "orgdb/orgdb.hpp"

namespace dnh::analytics {

struct HostedDomain {
  std::string name;          ///< 2LD (or FQDN at fine granularity)
  std::uint64_t flows = 0;
  double flow_share = 0.0;   ///< of all flows served by the provider
};

struct ContentReport {
  std::string provider;
  std::uint64_t total_flows = 0;
  std::size_t distinct_fqdns = 0;
  std::vector<HostedDomain> domains;  ///< ranked by flows
};

/// CONTENT_DISCOVERY over an explicit server set.
ContentReport content_discovery(const core::FlowDatabase& db,
                                const std::set<net::Ipv4Address>& servers,
                                std::size_t top_k = 10,
                                bool fqdn_granularity = false);

/// CONTENT_DISCOVERY for every server the org database attributes to
/// `provider` ("amazon", "akamai", ...).
ContentReport content_discovery_by_provider(const core::FlowDatabase& db,
                                            const orgdb::OrgDb& orgs,
                                            const std::string& provider,
                                            std::size_t top_k = 10,
                                            bool fqdn_granularity = false);

}  // namespace dnh::analytics

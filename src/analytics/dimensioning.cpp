#include "analytics/dimensioning.hpp"

#include <algorithm>
#include <map>
#include <span>
#include <unordered_map>

#include "core/resolver.hpp"
#include "dns/domain.hpp"

namespace dnh::analytics {
namespace {

/// Time-ordered merge of DNS inserts and flow-start lookups.
struct Step {
  std::int64_t t_micros = 0;
  bool is_flow = false;
  std::uint32_t index = 0;  ///< into dns_log or db.flows()
};

std::vector<Step> merged_timeline(
    const std::vector<core::DnsEvent>& dns_log,
    const core::FlowDatabase& db) {
  std::vector<Step> steps;
  steps.reserve(dns_log.size() + db.size());
  for (std::uint32_t i = 0; i < dns_log.size(); ++i)
    steps.push_back({dns_log[i].time.micros_since_epoch(), false, i});
  for (std::uint32_t i = 0; i < db.size(); ++i)
    steps.push_back(
        {db.flow(i).first_packet.micros_since_epoch(), true, i});
  std::stable_sort(steps.begin(), steps.end(),
                   [](const Step& a, const Step& b) {
                     if (a.t_micros != b.t_micros)
                       return a.t_micros < b.t_micros;
                     // DNS inserts win ties so a same-instant flow can hit.
                     return a.is_flow < b.is_flow;
                   });
  return steps;
}

}  // namespace

std::vector<DimensioningPoint> clist_efficiency_sweep(
    const std::vector<core::DnsEvent>& dns_log, const core::FlowDatabase& db,
    const std::vector<std::size_t>& sizes) {
  const auto steps = merged_timeline(dns_log, db);

  // Reference pass: which flows CAN be labeled with an unbounded Clist.
  std::vector<bool> resolvable(db.size(), false);
  {
    core::DnsResolver reference{dns_log.size() + 1};
    for (const auto& step : steps) {
      if (step.is_flow) {
        const auto& key = db.flow(step.index).key;
        resolvable[step.index] =
            reference.lookup(key.client_ip, key.server_ip).has_value();
      } else {
        const auto& event = dns_log[step.index];
        reference.insert(event.client, event.fqdn,
                         std::span{event.servers}, event.time);
      }
    }
  }

  std::vector<DimensioningPoint> out;
  for (const auto size : sizes) {
    core::DnsResolver resolver{size};
    DimensioningPoint point;
    point.clist_size = size;
    for (const auto& step : steps) {
      if (step.is_flow) {
        if (!resolvable[step.index]) continue;
        ++point.lookups;
        const auto& key = db.flow(step.index).key;
        if (resolver.lookup(key.client_ip, key.server_ip)) ++point.hits;
      } else {
        const auto& event = dns_log[step.index];
        resolver.insert(event.client, event.fqdn, std::span{event.servers},
                        event.time);
      }
    }
    point.efficiency = point.lookups
                           ? static_cast<double>(point.hits) /
                                 static_cast<double>(point.lookups)
                           : 0.0;
    out.push_back(point);
  }
  return out;
}

std::vector<std::uint64_t> answers_per_response(
    const std::vector<core::DnsEvent>& dns_log, std::size_t max_bucket) {
  std::vector<std::uint64_t> histogram(max_bucket + 1, 0);
  for (const auto& event : dns_log) {
    const std::size_t n = std::min(event.servers.size(), max_bucket);
    ++histogram[n];
  }
  return histogram;
}

ConfusionReport confusion_analysis(
    const std::vector<core::DnsEvent>& dns_log,
    const core::FlowDatabase& db) {
  ConfusionReport report;
  // (client, server) -> current FQDN, replayed in time order.
  std::unordered_map<std::uint64_t, std::string> binding;
  for (const auto& event : dns_log) {
    for (const auto server : event.servers) {
      const std::uint64_t key =
          (std::uint64_t{event.client.value()} << 32) | server.value();
      auto [it, inserted] = binding.try_emplace(key, event.fqdn);
      if (!inserted && it->second != event.fqdn) {
        ++report.replacements;
        ++report.different_fqdn;
        if (dns::second_level_domain(it->second) !=
            dns::second_level_domain(event.fqdn))
          ++report.different_organization;
        it->second = event.fqdn;
      } else if (!inserted) {
        ++report.replacements;
        it->second = event.fqdn;
      }
    }
  }
  for (const auto& flow : db.flows())
    if (flow.labeled()) ++report.lookups;
  return report;
}

}  // namespace dnh::analytics

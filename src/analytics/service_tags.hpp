// Automatic Service Tag Extraction (paper Sec. 4.3, Algorithm 4;
// evaluated in Tables 6-7): ranks the FQDN tokens seen on a layer-4 port,
// scoring token X as  score(X) = sum_c log(N_X(c) + 1)  over clients c to
// damp heavy single-client repetition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flowdb.hpp"

namespace dnh::analytics {

struct ServiceTag {
  std::string token;
  double score = 0.0;
};

struct TagExtractionOptions {
  std::size_t top_k = 10;
  /// Ablation: score by raw flow count instead of the paper's log score.
  bool raw_counts = false;
};

/// TAG_EXTRACTION(dPort, k): ranked tags for flows to `port`.
std::vector<ServiceTag> extract_service_tags(
    const core::FlowDatabase& db, std::uint16_t port,
    const TagExtractionOptions& options = {});

/// Same scoring restricted to an arbitrary flow subset (used for the
/// appspot word cloud, Fig. 10 — tokens of one 2LD's FQDNs).
std::vector<ServiceTag> extract_tags_for_flows(
    const core::FlowDatabase& db,
    const std::vector<core::FlowDatabase::FlowIndex>& flows,
    const TagExtractionOptions& options = {});

}  // namespace dnh::analytics

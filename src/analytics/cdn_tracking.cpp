#include "analytics/cdn_tracking.hpp"

#include <algorithm>
#include <set>

namespace dnh::analytics {

std::string HostingBin::dominant() const {
  std::string best;
  std::uint64_t best_count = 0;
  for (const auto& [host, count] : hosts) {
    if (count > best_count) {
      best = host;
      best_count = count;
    }
  }
  return best;
}

CdnTrackingReport track_hosting(const core::FlowDatabase& db,
                                const orgdb::OrgDb& orgs,
                                const std::string& sld,
                                util::Timestamp start, util::Timestamp end,
                                util::Duration bin) {
  CdnTrackingReport report;
  report.sld = sld;

  const std::int64_t start_s = start.seconds_since_epoch();
  const std::int64_t bin_s =
      std::max<std::int64_t>(bin.total_micros() / 1'000'000, 1);
  const std::int64_t span_s = end.seconds_since_epoch() - start_s;
  const std::size_t n_bins =
      static_cast<std::size_t>(std::max<std::int64_t>(span_s / bin_s, 1));

  report.bins.resize(n_bins);
  for (std::size_t b = 0; b < n_bins; ++b)
    report.bins[b].start_seconds = start_s + static_cast<std::int64_t>(b) * bin_s;

  std::set<std::string> hosts;
  for (const auto index : db.by_second_level(sld)) {
    const auto& flow = db.flow(index);
    const std::int64_t t = flow.first_packet.seconds_since_epoch();
    const std::int64_t b = (t - start_s) / bin_s;
    if (b < 0 || static_cast<std::size_t>(b) >= n_bins) continue;
    // Addresses outside the org database are identified by /16 prefix so
    // churn is still visible without whois data.
    std::string host;
    if (const auto org = orgs.lookup(flow.key.server_ip)) {
      host = std::string{*org};
    } else {
      host = net::cidr(flow.key.server_ip, 16).first.to_string() + "/16";
    }
    HostingBin& hosting_bin = report.bins[static_cast<std::size_t>(b)];
    ++hosting_bin.flows;
    ++hosting_bin.hosts[host];
    hosts.insert(host);
  }
  report.hosts_seen.assign(hosts.begin(), hosts.end());

  std::string previous;
  for (const auto& hosting_bin : report.bins) {
    const std::string current = hosting_bin.dominant();
    if (current.empty()) continue;  // empty bins don't break a streak
    if (!previous.empty() && current != previous)
      report.switches.push_back(
          {hosting_bin.start_seconds, previous, current});
    previous = current;
  }
  return report;
}

}  // namespace dnh::analytics

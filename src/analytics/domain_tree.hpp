// Domain-structure trees (paper Figs. 7-8): the token tree of an
// organization's FQDNs, with each leaf branch attributed to the CDN
// hosting it (server count + flow share).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/flowdb.hpp"
#include "orgdb/orgdb.hpp"

namespace dnh::analytics {

/// One node of the token tree. Children keyed by normalized token.
struct DomainTreeNode {
  std::string token;
  std::uint64_t flows = 0;
  std::map<std::string, std::unique_ptr<DomainTreeNode>> children;
};

struct DomainTree {
  std::string sld;
  std::uint64_t total_flows = 0;
  DomainTreeNode root;  ///< root token == the 2LD itself
  /// Hosting groups: CDN -> {server count, flows, FQDN branches}.
  struct HostingGroup {
    std::size_t servers = 0;
    std::uint64_t flows = 0;
    std::set<std::string> fqdns;  ///< normalized sub-domain branches
  };
  std::map<std::string, HostingGroup> hosting;
};

/// Builds the tree for one organization from labeled flows.
DomainTree build_domain_tree(const core::FlowDatabase& db,
                             const orgdb::OrgDb& orgs,
                             const std::string& sld);

/// ASCII rendering in the spirit of Figs. 7-8: hosting groups with server
/// counts and flow shares, then the token tree.
std::string render_domain_tree(const DomainTree& tree,
                               std::size_t max_branches_per_group = 12);

}  // namespace dnh::analytics

// Botnet / DGA detection from the DNS log (the paper's related work
// [10, 11]: botnet detection by monitoring group activity in DNS traffic
// and detecting algorithmically generated domain names).
//
// DN-Hunter's DNS Response Sniffer already sees every resolution attempt,
// including failures. Infected hosts probing a domain-generation
// algorithm's candidate list show two joint signals a normal client never
// produces at volume:
//   1. a high NXDOMAIN ratio (most DGA candidates are unregistered), and
//   2. queried names with high character randomness (bigram improbability)
//      across many distinct 2nd-level domains.
// The detector scores each client on both and reports those crossing the
// thresholds, with the offending sample names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sniffer.hpp"
#include "net/ip.hpp"

namespace dnh::analytics {

struct DgaConfig {
  /// Minimum resolutions before a client is scored at all.
  std::uint32_t min_queries = 20;
  /// NXDOMAIN fraction above which a client is suspicious.
  double nxdomain_threshold = 0.4;
  /// Mean name-randomness score above which names look generated
  /// (0 = natural English-like, 1 = uniform random letters).
  double randomness_threshold = 0.45;
};

struct DgaSuspect {
  net::Ipv4Address client;
  std::uint64_t queries = 0;
  std::uint64_t nxdomains = 0;
  double nxdomain_ratio = 0.0;
  double mean_randomness = 0.0;
  std::size_t distinct_slds = 0;
  std::vector<std::string> sample_names;  ///< up to 5 suspicious names
};

/// Character-level randomness of one DNS label sequence in [0, 1]:
/// mean per-bigram improbability against English letter-pair statistics,
/// blended with digit/consonant-run penalties. Natural names ("facebook",
/// "mail") score low; DGA output ("xkqwzejv") scores high.
double name_randomness(std::string_view fqdn);

/// Scans a DNS log and reports clients matching both DGA signals,
/// ranked by NXDOMAIN volume.
std::vector<DgaSuspect> detect_dga_clients(
    const std::vector<core::DnsEvent>& dns_log, const DgaConfig& config = {});

}  // namespace dnh::analytics

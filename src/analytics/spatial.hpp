// Spatial Discovery of Servers (paper Sec. 4.1, Algorithm 2): given a
// resource (FQDN), find every server delivering it and everything its
// organization is served by, ranked by observed flow volume.
#pragma once

#include <string>
#include <vector>

#include "core/flowdb.hpp"
#include "net/ip.hpp"
#include "orgdb/orgdb.hpp"

namespace dnh::analytics {

struct RankedServer {
  net::Ipv4Address server;
  std::uint64_t flows = 0;
  std::string organization;  ///< hosting org (whois/orgdb join)
};

struct SpatialReport {
  std::string fqdn;
  std::string second_level;
  /// Servers observed for the exact FQDN, most flows first.
  std::vector<RankedServer> fqdn_servers;
  /// Servers observed for the whole organization (2LD), most flows first.
  std::vector<RankedServer> organization_servers;
};

/// SPATIAL_DISCOVERY(FQDN).
SpatialReport spatial_discovery(const core::FlowDatabase& db,
                                const orgdb::OrgDb& orgs,
                                const std::string& fqdn);

/// Per-hosting-organization rollup of an organization's servers (the
/// "rectangular node" summaries of Figs. 7-8 and the Fig. 9 rows).
struct HostingSummary {
  std::string host_org;
  std::size_t servers = 0;
  std::uint64_t flows = 0;
  double flow_share = 0.0;
};

std::vector<HostingSummary> hosting_breakdown(const core::FlowDatabase& db,
                                              const orgdb::OrgDb& orgs,
                                              const std::string& sld);

}  // namespace dnh::analytics

// FQDN tokenization for the Service Tag Extraction analytics (paper
// Sec. 4.3): sub-domain labels (TLD and 2nd-level domain stripped) are
// split on non-alphanumeric characters and digit runs are replaced by the
// generic letter 'N', so "smtp2.mail.google.com" -> {"smtpN", "mail"}.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dnh::analytics {

/// Collapses every maximal digit run in `token` to a single 'N'
/// ("media4" -> "mediaN", "12" -> "N").
std::string normalize_digits(std::string_view token);

/// Tokens of one FQDN per the paper's rule. The TLD and second-level
/// domain are excluded; remaining labels are split on non-alphanumerics.
std::vector<std::string> fqdn_tokens(std::string_view fqdn);

}  // namespace dnh::analytics

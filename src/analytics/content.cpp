#include "analytics/content.hpp"

#include <algorithm>
#include <map>

namespace dnh::analytics {
namespace {

ContentReport build_report(const core::FlowDatabase& db,
                           const std::vector<const std::vector<
                               core::FlowDatabase::FlowIndex>*>& flow_lists,
                           std::string provider, std::size_t top_k,
                           bool fqdn_granularity) {
  ContentReport report;
  report.provider = std::move(provider);
  std::map<std::string, std::uint64_t> counts;
  std::set<std::string> fqdns;
  for (const auto* list : flow_lists) {
    for (const auto index : *list) {
      const auto& flow = db.flow(index);
      if (!flow.labeled()) continue;
      ++report.total_flows;
      fqdns.emplace(flow.fqdn);
      const std::string key = std::string{
          fqdn_granularity ? flow.fqdn : flow.second_level()};
      ++counts[key];
    }
  }
  report.distinct_fqdns = fqdns.size();
  report.domains.reserve(counts.size());
  for (const auto& [name, flows] : counts) {
    report.domains.push_back(
        {name, flows,
         report.total_flows ? static_cast<double>(flows) /
                                  static_cast<double>(report.total_flows)
                            : 0.0});
  }
  std::sort(report.domains.begin(), report.domains.end(),
            [](const HostedDomain& a, const HostedDomain& b) {
              if (a.flows != b.flows) return a.flows > b.flows;
              return a.name < b.name;
            });
  if (top_k > 0 && report.domains.size() > top_k)
    report.domains.resize(top_k);
  return report;
}

}  // namespace

ContentReport content_discovery(const core::FlowDatabase& db,
                                const std::set<net::Ipv4Address>& servers,
                                std::size_t top_k, bool fqdn_granularity) {
  std::vector<const std::vector<core::FlowDatabase::FlowIndex>*> lists;
  lists.reserve(servers.size());
  for (const auto server : servers) lists.push_back(&db.by_server(server));
  return build_report(db, lists, "custom-set", top_k, fqdn_granularity);
}

ContentReport content_discovery_by_provider(const core::FlowDatabase& db,
                                            const orgdb::OrgDb& orgs,
                                            const std::string& provider,
                                            std::size_t top_k,
                                            bool fqdn_granularity) {
  // Collect every distinct server seen in the database that the org
  // database attributes to the provider, then aggregate its flows.
  std::set<net::Ipv4Address> servers;
  for (const auto& flow : db.flows()) {
    if (servers.count(flow.key.server_ip)) continue;
    if (orgs.lookup_or(flow.key.server_ip) == provider)
      servers.insert(flow.key.server_ip);
  }
  auto report = content_discovery(db, servers, top_k, fqdn_granularity);
  report.provider = provider;
  return report;
}

}  // namespace dnh::analytics

// Temporal analytics: the timeline and birth-process figures.
//  - Fig. 4: distinct serverIPs serving a 2LD per 10-min bin
//  - Fig. 5: distinct FQDNs served by a CDN per 10-min bin
//  - Fig. 6: cumulative unique FQDN / 2LD / serverIP birth processes
//  - Fig. 11: per-tracker activity matrix over 4-hour bins
//  - Fig. 14: DNS responses per 10-min bin
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/flowdb.hpp"
#include "core/sniffer.hpp"
#include "orgdb/orgdb.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace dnh::analytics {

/// Distinct serverIPs observed in flows labeled with `sld`, per bin.
util::TimeBinSeries distinct_servers_timeline(
    const core::FlowDatabase& db, const std::string& sld,
    util::Timestamp start, util::Timestamp end,
    util::Duration bin = util::Duration::minutes(10));

/// Distinct FQDNs observed on servers belonging to `provider`, per bin.
util::TimeBinSeries distinct_fqdns_timeline(
    const core::FlowDatabase& db, const orgdb::OrgDb& orgs,
    const std::string& provider, util::Timestamp start, util::Timestamp end,
    util::Duration bin = util::Duration::minutes(10));

/// Total distinct FQDNs a provider served over the whole window (the
/// "Amazon served 7995 FQDN in the whole day" number).
std::size_t distinct_fqdns_total(const core::FlowDatabase& db,
                                 const orgdb::OrgDb& orgs,
                                 const std::string& provider);

/// Cumulative unique-entity counts sampled per bin (Fig. 6).
struct BirthProcess {
  std::vector<std::int64_t> bin_start_seconds;
  std::vector<std::uint64_t> unique_fqdns;
  std::vector<std::uint64_t> unique_slds;
  std::vector<std::uint64_t> unique_servers;
};

BirthProcess birth_process(const core::FlowDatabase& db,
                           util::Timestamp start, util::Timestamp end,
                           util::Duration bin = util::Duration::hours(6));

/// Per-tracker activity matrix (Fig. 11): rows ordered by first activity;
/// a cell is true when the tracker saw >= 1 flow in that bin.
struct TrackerTimeline {
  std::vector<std::string> fqdns;            ///< row id -> tracker FQDN
  std::vector<std::vector<bool>> active;     ///< [row][bin]
  std::vector<std::int64_t> bin_start_seconds;
};

TrackerTimeline tracker_timeline(
    const core::FlowDatabase& db, const std::vector<std::string>& trackers,
    util::Timestamp start, util::Timestamp end,
    util::Duration bin = util::Duration::hours(4));

/// DNS responses per bin from the sniffer's DNS log (Fig. 14).
util::TimeBinSeries dns_response_rate(
    const std::vector<core::DnsEvent>& dns_log, util::Timestamp start,
    util::Timestamp end, util::Duration bin = util::Duration::minutes(10));

}  // namespace dnh::analytics

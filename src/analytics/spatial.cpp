#include "analytics/spatial.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "dns/domain.hpp"

namespace dnh::analytics {
namespace {

std::vector<RankedServer> rank_servers(
    const core::FlowDatabase& db, const orgdb::OrgDb& orgs,
    const std::vector<core::FlowDatabase::FlowIndex>& flows) {
  std::map<net::Ipv4Address, std::uint64_t> counts;
  for (const auto index : flows) ++counts[db.flow(index).key.server_ip];
  std::vector<RankedServer> out;
  out.reserve(counts.size());
  for (const auto& [server, count] : counts)
    out.push_back({server, count, orgs.lookup_or(server)});
  std::sort(out.begin(), out.end(),
            [](const RankedServer& a, const RankedServer& b) {
              if (a.flows != b.flows) return a.flows > b.flows;
              return a.server < b.server;
            });
  return out;
}

}  // namespace

SpatialReport spatial_discovery(const core::FlowDatabase& db,
                                const orgdb::OrgDb& orgs,
                                const std::string& fqdn) {
  SpatialReport report;
  report.fqdn = fqdn;
  report.second_level = std::string{dns::second_level_domain(fqdn)};
  report.fqdn_servers = rank_servers(db, orgs, db.by_fqdn(fqdn));
  report.organization_servers =
      rank_servers(db, orgs, db.by_second_level(report.second_level));
  return report;
}

std::vector<HostingSummary> hosting_breakdown(const core::FlowDatabase& db,
                                              const orgdb::OrgDb& orgs,
                                              const std::string& sld) {
  struct Acc {
    std::set<net::Ipv4Address> servers;
    std::uint64_t flows = 0;
  };
  std::map<std::string, Acc> accs;
  std::uint64_t total = 0;
  for (const auto index : db.by_second_level(sld)) {
    const auto& flow = db.flow(index);
    Acc& acc = accs[orgs.lookup_or(flow.key.server_ip)];
    acc.servers.insert(flow.key.server_ip);
    ++acc.flows;
    ++total;
  }
  std::vector<HostingSummary> out;
  for (const auto& [host, acc] : accs) {
    out.push_back({host, acc.servers.size(), acc.flows,
                   total ? static_cast<double>(acc.flows) /
                               static_cast<double>(total)
                         : 0.0});
  }
  std::sort(out.begin(), out.end(),
            [](const HostingSummary& a, const HostingSummary& b) {
              return a.flows > b.flows;
            });
  return out;
}

}  // namespace dnh::analytics

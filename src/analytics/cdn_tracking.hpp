// CDN-assignment tracking over time (paper Sec. 4.1 question iii: "Do the
// CDNs catering the resource change over time and geography?").
//
// For one organization (2LD), bins its labeled flows over time and reports
// the hosting-organization mix per bin, plus the detected switch events —
// bins where the dominant host differs from the previous bin's. This is
// the temporal complement of `hosting_breakdown`, and the machinery behind
// the paper's claim that DN-Hunter "automatically keeps track of any
// changes over time in serverIP addresses that satisfy a given FQDN".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/flowdb.hpp"
#include "orgdb/orgdb.hpp"
#include "util/time.hpp"

namespace dnh::analytics {

struct HostingBin {
  std::int64_t start_seconds = 0;
  std::uint64_t flows = 0;
  /// host org -> flow count in this bin.
  std::map<std::string, std::uint64_t> hosts;

  /// The busiest host of the bin ("" when the bin is empty).
  std::string dominant() const;
};

struct HostingSwitch {
  std::int64_t at_seconds = 0;
  std::string from;
  std::string to;
};

struct CdnTrackingReport {
  std::string sld;
  std::vector<HostingBin> bins;
  /// Dominant-host changes between consecutive non-empty bins.
  std::vector<HostingSwitch> switches;
  /// Every host org observed over the window.
  std::vector<std::string> hosts_seen;
};

/// Tracks `sld`'s hosting mix between `start` and `end` in `bin`-sized
/// windows.
CdnTrackingReport track_hosting(const core::FlowDatabase& db,
                                const orgdb::OrgDb& orgs,
                                const std::string& sld,
                                util::Timestamp start, util::Timestamp end,
                                util::Duration bin = util::Duration::hours(1));

}  // namespace dnh::analytics

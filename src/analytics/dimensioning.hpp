// Clist dimensioning study (paper Sec. 6): how resolver efficiency varies
// with the circular-list size L, the answers-per-response distribution,
// and the label-confusion rate (same client + serverIP carrying different
// FQDNs, mostly HTTP redirects within one organization).
#pragma once

#include <cstdint>
#include <vector>

#include "core/flowdb.hpp"
#include "core/sniffer.hpp"

namespace dnh::analytics {

struct DimensioningPoint {
  std::size_t clist_size = 0;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  double efficiency = 0.0;  ///< hits / lookups among resolvable flows
};

/// Replays the DNS log + flow starts through fresh resolvers of each size
/// in `sizes`. Only flows the unlimited resolver can label count in the
/// denominator, isolating the eviction effect the paper dimensions.
std::vector<DimensioningPoint> clist_efficiency_sweep(
    const std::vector<core::DnsEvent>& dns_log, const core::FlowDatabase& db,
    const std::vector<std::size_t>& sizes);

/// Histogram of A-record counts per response: index i holds the number of
/// responses with i answers (index 0 unused; capped at `max_bucket`).
std::vector<std::uint64_t> answers_per_response(
    const std::vector<core::DnsEvent>& dns_log, std::size_t max_bucket = 40);

struct ConfusionReport {
  std::uint64_t replacements = 0;           ///< (client,server) re-pointed
  std::uint64_t different_fqdn = 0;         ///< ... to a different FQDN
  std::uint64_t different_organization = 0; ///< ... across 2LDs (true risk)
  std::uint64_t lookups = 0;

  /// Fraction of lookups at risk of a wrong label, counting same-2LD
  /// replacements (HTTP redirects) as harmless — the paper's "<4% after
  /// excluding redirections".
  double confusion_rate() const noexcept {
    return lookups ? static_cast<double>(different_organization) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
  double raw_replacement_rate() const noexcept {
    return lookups ? static_cast<double>(different_fqdn) /
                         static_cast<double>(lookups)
                   : 0.0;
  }
};

/// Replays the DNS log tracking (client,server)->FQDN rebinding.
ConfusionReport confusion_analysis(
    const std::vector<core::DnsEvent>& dns_log,
    const core::FlowDatabase& db);

}  // namespace dnh::analytics

#include "analytics/volume.hpp"

#include <algorithm>
#include <map>

#include "dns/domain.hpp"
#include "util/strings.hpp"

namespace dnh::analytics {
namespace {

/// The last `depth` labels of `fqdn`, anchored at the effective TLD:
/// depth 1 -> "com", depth 2 -> "google.com", depth 3 -> "mail.google.com".
std::string name_at_depth(std::string_view fqdn, int depth) {
  const std::string_view sld = dns::second_level_domain(fqdn);
  if (depth <= 1) return std::string{dns::effective_tld(fqdn)};
  if (depth == 2 || sld.size() == fqdn.size()) return std::string{sld};
  // Take (depth - 2) further labels from the subdomain part, right to
  // left.
  const std::string_view sub = dns::subdomain_part(fqdn);
  const auto labels = util::split(sub, '.');
  const int extra = std::min<int>(depth - 2, static_cast<int>(labels.size()));
  std::string out{sld};
  for (int i = 0; i < extra; ++i) {
    out.insert(0, ".");
    out.insert(0, labels[labels.size() - 1 - i]);
  }
  return out;
}

}  // namespace

VolumeReport traffic_by_domain(const core::FlowDatabase& db, int depth,
                               std::size_t top_k) {
  VolumeReport report;
  std::map<std::string, VolumeRow> rows;
  for (const auto& flow : db.flows()) {
    const std::uint64_t bytes = flow.bytes_c2s + flow.bytes_s2c;
    if (!flow.labeled()) {
      ++report.unlabeled_flows;
      report.unlabeled_bytes += bytes;
      continue;
    }
    ++report.total_flows;
    report.total_bytes += bytes;
    VolumeRow& row = rows[name_at_depth(flow.fqdn, depth)];
    ++row.flows;
    row.bytes += bytes;
  }
  report.rows.reserve(rows.size());
  for (auto& [name, row] : rows) {
    row.name = name;
    row.byte_share = report.total_bytes
                         ? static_cast<double>(row.bytes) /
                               static_cast<double>(report.total_bytes)
                         : 0.0;
    report.rows.push_back(std::move(row));
  }
  std::sort(report.rows.begin(), report.rows.end(),
            [](const VolumeRow& a, const VolumeRow& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.name < b.name;
            });
  if (top_k > 0 && report.rows.size() > top_k) report.rows.resize(top_k);
  return report;
}

std::vector<std::pair<flow::ProtocolClass, VolumeRow>> traffic_by_protocol(
    const core::FlowDatabase& db) {
  std::map<flow::ProtocolClass, VolumeRow> rows;
  std::uint64_t total_bytes = 0;
  for (const auto& flow : db.flows()) {
    const std::uint64_t bytes = flow.bytes_c2s + flow.bytes_s2c;
    VolumeRow& row = rows[flow.protocol];
    ++row.flows;
    row.bytes += bytes;
    total_bytes += bytes;
  }
  std::vector<std::pair<flow::ProtocolClass, VolumeRow>> out;
  for (auto& [cls, row] : rows) {
    row.name = std::string{flow::protocol_class_name(cls)};
    row.byte_share = total_bytes ? static_cast<double>(row.bytes) /
                                       static_cast<double>(total_bytes)
                                 : 0.0;
    out.emplace_back(cls, std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.bytes > b.second.bytes;
  });
  return out;
}

}  // namespace dnh::analytics

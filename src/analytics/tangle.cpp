#include "analytics/tangle.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace dnh::analytics {

TangleReport tangle_graph(const core::FlowDatabase& db, std::size_t top_k,
                          std::size_t min_shared) {
  // server IP -> set of orgs; org -> set of servers.
  std::map<net::Ipv4Address, std::set<std::string>> orgs_on_server;
  std::map<std::string, std::set<net::Ipv4Address>> servers_of_org;
  for (const auto& flow : db.flows()) {
    if (!flow.labeled()) continue;
    const std::string sld{flow.second_level()};
    orgs_on_server[flow.key.server_ip].insert(sld);
    servers_of_org[sld].insert(flow.key.server_ip);
  }

  TangleReport report;
  report.organizations = servers_of_org.size();

  std::map<std::pair<std::string, std::string>, std::size_t> shared;
  std::set<std::string> entangled;
  for (const auto& [server, orgs] : orgs_on_server) {
    if (orgs.size() < 2) continue;
    ++report.multi_tenant_servers;
    for (auto a = orgs.begin(); a != orgs.end(); ++a) {
      entangled.insert(*a);
      for (auto b = std::next(a); b != orgs.end(); ++b)
        ++shared[{*a, *b}];
    }
  }
  report.entangled_orgs = entangled.size();

  report.pairs.reserve(shared.size());
  for (const auto& [pair, count] : shared) {
    if (count < min_shared) continue;
    TanglePair edge;
    edge.org_a = pair.first;
    edge.org_b = pair.second;
    edge.shared_servers = count;
    edge.servers_a = servers_of_org[pair.first].size();
    edge.servers_b = servers_of_org[pair.second].size();
    report.pairs.push_back(std::move(edge));
  }
  std::sort(report.pairs.begin(), report.pairs.end(),
            [](const TanglePair& a, const TanglePair& b) {
              if (a.shared_servers != b.shared_servers)
                return a.shared_servers > b.shared_servers;
              return std::tie(a.org_a, a.org_b) < std::tie(b.org_a, b.org_b);
            });
  if (top_k > 0 && report.pairs.size() > top_k) report.pairs.resize(top_k);
  return report;
}

}  // namespace dnh::analytics

// The tangle graph: which organizations share serving infrastructure.
//
// The paper's opening motif is that content owners and content hosts are
// decoupled — "the server IP-address for both of these services can be
// the same" (Zynga and Dropbox on EC2). This module quantifies that
// entanglement from the labeled flow database: for every pair of
// organizations observed on at least one common server IP, the number of
// shared servers and the Jaccard overlap of their server sets; plus a
// per-organization entanglement summary. It is the measurement behind
// the claim that IP-based policy cannot separate services.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flowdb.hpp"

namespace dnh::analytics {

struct TanglePair {
  std::string org_a;   ///< 2nd-level domains, org_a < org_b
  std::string org_b;
  std::size_t shared_servers = 0;
  std::size_t servers_a = 0;
  std::size_t servers_b = 0;

  /// |A ∩ B| / |A ∪ B|.
  double jaccard() const noexcept {
    const std::size_t uni = servers_a + servers_b - shared_servers;
    return uni ? static_cast<double>(shared_servers) /
                     static_cast<double>(uni)
               : 0.0;
  }
};

struct TangleReport {
  /// Pairs with >= 1 shared server, most shared servers first.
  std::vector<TanglePair> pairs;
  std::size_t organizations = 0;     ///< orgs with labeled flows
  std::size_t entangled_orgs = 0;    ///< orgs sharing >= 1 server
  std::size_t multi_tenant_servers = 0;  ///< IPs serving >= 2 orgs

  /// Fraction of organizations that cannot be isolated by IP filters.
  double entangled_fraction() const noexcept {
    return organizations ? static_cast<double>(entangled_orgs) /
                               static_cast<double>(organizations)
                         : 0.0;
  }
};

/// Builds the tangle graph over all labeled flows. `top_k` truncates the
/// pair list (0 = all); `min_shared` drops weaker edges.
TangleReport tangle_graph(const core::FlowDatabase& db, std::size_t top_k = 20,
                          std::size_t min_shared = 1);

}  // namespace dnh::analytics

#include "analytics/delay.hpp"

#include <algorithm>
#include <map>

namespace dnh::analytics {

DelayReport analyze_delays(const std::vector<core::DnsEvent>& dns_log,
                           const core::FlowDatabase& db) {
  DelayReport report;
  report.responses = dns_log.size();

  // Response identity: (client, response micros). The tagger propagated
  // the response timestamp into each flow it labeled, so grouping flows by
  // it reconstructs exactly which response produced which flows.
  std::map<std::pair<std::uint32_t, std::int64_t>,
           std::vector<std::int64_t>>
      flow_starts;
  for (const auto& flow : db.flows()) {
    if (!flow.labeled() || !flow.tagged_at_start) continue;
    flow_starts[{flow.key.client_ip.value(),
                 flow.dns_response_time.micros_since_epoch()}]
        .push_back(flow.first_packet.micros_since_epoch());
  }
  for (auto& [_, starts] : flow_starts) std::sort(starts.begin(), starts.end());

  for (const auto& event : dns_log) {
    const auto it = flow_starts.find(
        {event.client.value(), event.time.micros_since_epoch()});
    if (it == flow_starts.end() || it->second.empty()) {
      ++report.useless_responses;
      continue;
    }
    const std::int64_t t0 = event.time.micros_since_epoch();
    report.first_flow_delay.add(
        static_cast<double>(it->second.front() - t0) / 1e6);
    for (const auto start : it->second)
      report.any_flow_delay.add(static_cast<double>(start - t0) / 1e6);
  }
  return report;
}

}  // namespace dnh::analytics

// DNS-response-to-flow delay analysis (paper Sec. 6): the first-flow delay
// CDF (Fig. 12), the any-flow delay CDF reflecting client cache lifetime
// (Fig. 13), and the "useless DNS" fraction (Table 9).
#pragma once

#include <vector>

#include "core/flowdb.hpp"
#include "core/sniffer.hpp"
#include "util/stats.hpp"

namespace dnh::analytics {

struct DelayReport {
  /// Delay from each DNS response to the FIRST flow it produced (Fig. 12).
  util::CdfAccumulator first_flow_delay;
  /// Delay from the labeling response to EVERY flow (Fig. 13).
  util::CdfAccumulator any_flow_delay;
  std::uint64_t responses = 0;
  std::uint64_t useless_responses = 0;  ///< never followed by any flow

  double useless_fraction() const noexcept {
    return responses ? static_cast<double>(useless_responses) /
                           static_cast<double>(responses)
                     : 0.0;
  }
};

/// Correlates the DNS log with the labeled flows. A response is matched to
/// flows from the same client labeled with the same FQDN whose labeling
/// response time equals the response's timestamp (the resolver stamps each
/// tag with its originating response).
DelayReport analyze_delays(const std::vector<core::DnsEvent>& dns_log,
                           const core::FlowDatabase& db);

}  // namespace dnh::analytics

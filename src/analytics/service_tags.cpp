#include "analytics/service_tags.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "analytics/tokenizer.hpp"

namespace dnh::analytics {
namespace {

std::vector<ServiceTag> rank(
    const std::map<std::string,
                   std::unordered_map<std::uint32_t, std::uint64_t>>&
        per_token_client_counts,
    const TagExtractionOptions& options) {
  std::vector<ServiceTag> tags;
  tags.reserve(per_token_client_counts.size());
  for (const auto& [token, clients] : per_token_client_counts) {
    double score = 0.0;
    for (const auto& [client, count] : clients) {
      score += options.raw_counts
                   ? static_cast<double>(count)
                   : std::log(static_cast<double>(count) + 1.0);
    }
    tags.push_back({token, score});
  }
  std::sort(tags.begin(), tags.end(),
            [](const ServiceTag& a, const ServiceTag& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.token < b.token;
            });
  if (options.top_k > 0 && tags.size() > options.top_k)
    tags.resize(options.top_k);
  return tags;
}

}  // namespace

std::vector<ServiceTag> extract_tags_for_flows(
    const core::FlowDatabase& db,
    const std::vector<core::FlowDatabase::FlowIndex>& flows,
    const TagExtractionOptions& options) {
  // token -> clientIP -> N_X(c)
  std::map<std::string, std::unordered_map<std::uint32_t, std::uint64_t>>
      counts;
  for (const auto index : flows) {
    const auto& flow = db.flow(index);
    if (!flow.labeled()) continue;
    for (const auto& token : fqdn_tokens(flow.fqdn))
      ++counts[token][flow.key.client_ip.value()];
  }
  return rank(counts, options);
}

std::vector<ServiceTag> extract_service_tags(
    const core::FlowDatabase& db, std::uint16_t port,
    const TagExtractionOptions& options) {
  return extract_tags_for_flows(db, db.by_server_port(port), options);
}

}  // namespace dnh::analytics

#include "analytics/dga.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <unordered_set>

#include "dns/domain.hpp"
#include "util/strings.hpp"

namespace dnh::analytics {
namespace {

/// Frequent English / web-name bigrams; natural names are dominated by
/// these, uniform-random strings hit them rarely.
const std::unordered_set<std::string>& common_bigrams() {
  static const std::unordered_set<std::string> bigrams{
      "th", "he", "in", "er", "an", "re", "nd", "on", "en", "at", "ou",
      "ed", "ha", "to", "or", "it", "is", "hi", "es", "ng", "st", "ar",
      "te", "se", "me", "of", "le", "ve", "co", "ne", "de", "ea", "ro",
      "ti", "ri", "io", "ic", "ll", "be", "ma", "el", "ch", "la", "ta",
      "nt", "al", "ce", "om", "il", "ur", "ra", "li", "as", "ca", "et",
      "ho", "ge", "ac", "ut", "us", "si", "ol", "ss", "ad", "ni", "un",
      "lo", "wa", "am", "em", "pl", "mo", "sh", "sa", "no", "ot", "ee",
      "tr", "id", "pe", "we", "oo", "ok", "bo", "ap", "ay", "po", "do",
      "go", "so", "na", "ck", "ai", "ir", "sp", "ki", "vi", "di", "da",
      "ly", "ble", "fa", "ga", "pa", "up", "ke", "ie", "ew", "ow", "ws",
      "tt", "ff", "ub", "su", "im", "um", "ep", "ex", "ty", "gl", "cl",
  };
  return bigrams;
}

bool is_vowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u' ||
         c == 'y';
}

}  // namespace

double name_randomness(std::string_view fqdn) {
  // Score the organization label: DGAs mint random 2LDs.
  const std::string_view sld = dns::second_level_domain(fqdn);
  std::string label{sld.substr(0, sld.find('.'))};
  for (char& c : label)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (label.size() < 4) return 0.0;  // too short to judge

  std::size_t letters = 0, digits = 0, bigram_total = 0, bigram_hits = 0;
  std::size_t consonant_run = 0, max_consonant_run = 0;
  char previous = 0;
  for (const char c : label) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
      consonant_run = 0;
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      ++letters;
      if (is_vowel(c)) {
        consonant_run = 0;
      } else {
        ++consonant_run;
        max_consonant_run = std::max(max_consonant_run, consonant_run);
      }
      if (previous != 0) {
        ++bigram_total;
        if (common_bigrams().count(std::string{previous, c}))
          ++bigram_hits;
      }
      previous = c;
      continue;
    }
    previous = 0;
  }
  if (letters + digits == 0) return 0.0;

  const double bigram_miss =
      bigram_total == 0 ? 0.5
                        : 1.0 - static_cast<double>(bigram_hits) /
                                    static_cast<double>(bigram_total);
  const double run_penalty =
      std::min(1.0, max_consonant_run > 3
                        ? (static_cast<double>(max_consonant_run) - 3.0) / 3.0
                        : 0.0);
  const double digit_fraction =
      static_cast<double>(digits) / static_cast<double>(letters + digits);

  // Natural names land around 0.1-0.35 on the blended scale; random
  // strings around 0.55-0.95.
  const double score =
      0.6 * bigram_miss + 0.25 * run_penalty + 0.3 * digit_fraction;
  return std::clamp(score, 0.0, 1.0);
}

std::vector<DgaSuspect> detect_dga_clients(
    const std::vector<core::DnsEvent>& dns_log, const DgaConfig& config) {
  struct Acc {
    std::uint64_t queries = 0;
    std::uint64_t nxdomains = 0;
    double randomness_sum = 0.0;
    std::set<std::string> slds;
    std::vector<std::pair<double, std::string>> scored_failures;
  };
  std::map<net::Ipv4Address, Acc> clients;

  for (const auto& event : dns_log) {
    Acc& acc = clients[event.client];
    ++acc.queries;
    const double randomness = name_randomness(event.fqdn);
    acc.randomness_sum += randomness;
    acc.slds.insert(std::string{dns::second_level_domain(event.fqdn)});
    if (event.servers.empty()) {
      ++acc.nxdomains;
      acc.scored_failures.emplace_back(randomness, event.fqdn);
    }
  }

  std::vector<DgaSuspect> suspects;
  for (auto& [client, acc] : clients) {
    if (acc.queries < config.min_queries) continue;
    const double nxdomain_ratio =
        static_cast<double>(acc.nxdomains) /
        static_cast<double>(acc.queries);
    const double mean_randomness =
        acc.randomness_sum / static_cast<double>(acc.queries);
    if (nxdomain_ratio < config.nxdomain_threshold ||
        mean_randomness < config.randomness_threshold)
      continue;

    DgaSuspect suspect;
    suspect.client = client;
    suspect.queries = acc.queries;
    suspect.nxdomains = acc.nxdomains;
    suspect.nxdomain_ratio = nxdomain_ratio;
    suspect.mean_randomness = mean_randomness;
    suspect.distinct_slds = acc.slds.size();
    std::sort(acc.scored_failures.rbegin(), acc.scored_failures.rend());
    for (std::size_t i = 0;
         i < std::min<std::size_t>(acc.scored_failures.size(), 5); ++i)
      suspect.sample_names.push_back(acc.scored_failures[i].second);
    suspects.push_back(std::move(suspect));
  }
  std::sort(suspects.begin(), suspects.end(),
            [](const DgaSuspect& a, const DgaSuspect& b) {
              return a.nxdomains > b.nxdomains;
            });
  return suspects;
}

}  // namespace dnh::analytics

// DNS anomaly detection (paper Sec. 4.1, closing note): DN-Hunter's
// continuous FQDN -> serverIP tracking makes sudden mapping changes —
// e.g. a cache-poisoning response pointing a known domain at an address
// in a never-before-seen network — stand out against the learned history.
//
// The detector builds a per-FQDN profile of the organizations/prefixes
// that historically answered for it, then scores each new response:
// answers landing entirely outside the profile after a stable history are
// flagged. CDN rotation inside known allocations stays silent.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/sniffer.hpp"
#include "net/ip.hpp"
#include "orgdb/orgdb.hpp"

namespace dnh::analytics {

struct AnomalyConfig {
  /// Responses observed for an FQDN before its profile counts as stable.
  std::uint32_t min_history = 5;
  /// Prefix length used to coarsen "same network" when the org database
  /// has no entry for an address.
  int fallback_prefix_len = 16;
};

struct DnsAnomaly {
  util::Timestamp time;
  net::Ipv4Address client;
  std::string fqdn;
  net::Ipv4Address suspicious_server;   ///< first out-of-profile answer
  std::string observed_org;             ///< where the new answer lives
  std::vector<std::string> known_orgs;  ///< the FQDN's historical profile
};

/// Streaming detector: feed DNS events in time order.
class DnsAnomalyDetector {
 public:
  explicit DnsAnomalyDetector(const orgdb::OrgDb& orgs,
                              AnomalyConfig config = {});

  /// Consumes one response; returns an anomaly report if it broke the
  /// FQDN's profile (the response is still learned afterwards, so a real
  /// migration only fires once).
  std::optional<DnsAnomaly> observe(const core::DnsEvent& event);

  /// Convenience: runs a whole DNS log, returning all anomalies.
  std::vector<DnsAnomaly> scan(const std::vector<core::DnsEvent>& log);

  std::uint64_t responses_seen() const noexcept { return responses_; }

 private:
  /// "Network identity" of an address: its org name, or its /N prefix
  /// rendered as text when unallocated.
  std::string network_of(net::Ipv4Address address) const;

  struct Profile {
    std::unordered_set<std::string> networks;
    std::uint32_t responses = 0;
  };

  const orgdb::OrgDb& orgs_;
  AnomalyConfig config_;
  std::unordered_map<std::string, Profile> profiles_;
  std::uint64_t responses_ = 0;
};

}  // namespace dnh::analytics

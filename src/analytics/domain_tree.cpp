#include "analytics/domain_tree.hpp"

#include <algorithm>

#include "analytics/tokenizer.hpp"
#include "dns/domain.hpp"
#include "util/strings.hpp"

namespace dnh::analytics {

DomainTree build_domain_tree(const core::FlowDatabase& db,
                             const orgdb::OrgDb& orgs,
                             const std::string& sld) {
  DomainTree tree;
  tree.sld = sld;
  tree.root.token = sld;

  struct ServerAcc {
    std::set<net::Ipv4Address> servers;
  };
  std::map<std::string, ServerAcc> hosting_servers;

  for (const auto index : db.by_second_level(sld)) {
    const auto& flow = db.flow(index);
    ++tree.total_flows;
    ++tree.root.flows;

    // Walk sub-domain labels right-to-left under the 2LD:
    // "iphone.stats.zynga.com" -> stats -> iphone.
    const std::string_view sub = dns::subdomain_part(flow.fqdn);
    DomainTreeNode* node = &tree.root;
    if (!sub.empty()) {
      auto labels = util::split(sub, '.');
      for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
        const std::string token = normalize_digits(*it);
        auto& child = node->children[token];
        if (!child) {
          child = std::make_unique<DomainTreeNode>();
          child->token = token;
        }
        node = child.get();
        ++node->flows;
      }
    }

    const std::string host = orgs.lookup_or(flow.key.server_ip);
    auto& group = tree.hosting[host];
    ++group.flows;
    group.fqdns.insert(sub.empty() ? "(apex)"
                                   : normalize_digits(sub));
    hosting_servers[host].servers.insert(flow.key.server_ip);
  }
  for (auto& [host, group] : tree.hosting)
    group.servers = hosting_servers[host].servers.size();
  return tree;
}

namespace {

void render_node(const DomainTreeNode& node, const std::string& prefix,
                 bool last, std::string& out) {
  out += prefix;
  out += last ? "`-- " : "|-- ";
  out += node.token + " (" + std::to_string(node.flows) + ")\n";
  const std::string child_prefix = prefix + (last ? "    " : "|   ");
  // Children by descending flows for readability.
  std::vector<const DomainTreeNode*> kids;
  for (const auto& [_, child] : node.children) kids.push_back(child.get());
  std::sort(kids.begin(), kids.end(),
            [](const DomainTreeNode* a, const DomainTreeNode* b) {
              if (a->flows != b->flows) return a->flows > b->flows;
              return a->token < b->token;
            });
  for (std::size_t i = 0; i < kids.size(); ++i)
    render_node(*kids[i], child_prefix, i + 1 == kids.size(), out);
}

}  // namespace

std::string render_domain_tree(const DomainTree& tree,
                               std::size_t max_branches_per_group) {
  std::string out = tree.sld + "  (" +
                    util::with_commas(tree.total_flows) + " flows)\n";

  // Hosting groups, largest first — the Fig. 7/8 rectangles.
  std::vector<std::pair<std::string, const DomainTree::HostingGroup*>>
      groups;
  for (const auto& [host, group] : tree.hosting)
    groups.emplace_back(host, &group);
  std::sort(groups.begin(), groups.end(), [](const auto& a, const auto& b) {
    return a.second->flows > b.second->flows;
  });
  for (const auto& [host, group] : groups) {
    const double share = tree.total_flows
                             ? static_cast<double>(group->flows) /
                                   static_cast<double>(tree.total_flows)
                             : 0.0;
    out += "  [" + host + "]  servers=" + std::to_string(group->servers) +
           "  flows=" + util::percent(share, 0) + "  branches: ";
    std::size_t shown = 0;
    for (const auto& fqdn : group->fqdns) {
      if (shown++ == max_branches_per_group) {
        out += "... (+" +
               std::to_string(group->fqdns.size() -
                              max_branches_per_group) +
               " hidden)";
        break;
      }
      if (shown > 1) out += ", ";
      out += fqdn;
    }
    out += "\n";
  }

  out += "token tree:\n";
  std::string body;
  render_node(tree.root, "  ", true, body);
  return out + body;
}

}  // namespace dnh::analytics

#include "analytics/anomaly.hpp"

namespace dnh::analytics {

DnsAnomalyDetector::DnsAnomalyDetector(const orgdb::OrgDb& orgs,
                                       AnomalyConfig config)
    : orgs_{orgs}, config_{config} {}

std::string DnsAnomalyDetector::network_of(net::Ipv4Address address) const {
  if (const auto org = orgs_.lookup(address)) return std::string{*org};
  const auto range = net::cidr(address, config_.fallback_prefix_len);
  return range.first.to_string() + "/" +
         std::to_string(config_.fallback_prefix_len);
}

std::optional<DnsAnomaly> DnsAnomalyDetector::observe(
    const core::DnsEvent& event) {
  ++responses_;
  if (event.servers.empty()) return std::nullopt;
  Profile& profile = profiles_[std::string{event.fqdn}];

  std::optional<DnsAnomaly> anomaly;
  if (profile.responses >= config_.min_history) {
    // Anomalous only when NO answer falls inside the learned profile: a
    // partial overlap is normal multi-CDN behaviour.
    bool any_known = false;
    net::Ipv4Address first_unknown;
    for (const auto server : event.servers) {
      if (profile.networks.count(network_of(server))) {
        any_known = true;
        break;
      }
      if (first_unknown == net::Ipv4Address{}) first_unknown = server;
    }
    if (!any_known) {
      DnsAnomaly report;
      report.time = event.time;
      report.client = event.client;
      report.fqdn = event.fqdn;
      report.suspicious_server = first_unknown;
      report.observed_org = network_of(first_unknown);
      report.known_orgs.assign(profile.networks.begin(),
                               profile.networks.end());
      anomaly = std::move(report);
    }
  }

  // Learn the response either way (legitimate migrations fire once).
  ++profile.responses;
  for (const auto server : event.servers)
    profile.networks.insert(network_of(server));
  return anomaly;
}

std::vector<DnsAnomaly> DnsAnomalyDetector::scan(
    const std::vector<core::DnsEvent>& log) {
  std::vector<DnsAnomaly> out;
  for (const auto& event : log) {
    if (auto anomaly = observe(event)) out.push_back(std::move(*anomaly));
  }
  return out;
}

}  // namespace dnh::analytics

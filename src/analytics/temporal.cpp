#include "analytics/temporal.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace dnh::analytics {
namespace {

std::size_t bin_count(util::Timestamp start, util::Timestamp end,
                      util::Duration bin) {
  const auto span = end - start;
  const auto n = span.total_micros() / bin.total_micros();
  return static_cast<std::size_t>(std::max<std::int64_t>(n, 1));
}

}  // namespace

util::TimeBinSeries distinct_servers_timeline(
    const core::FlowDatabase& db, const std::string& sld,
    util::Timestamp start, util::Timestamp end, util::Duration bin) {
  const std::size_t bins = bin_count(start, end, bin);
  std::vector<std::unordered_set<std::uint32_t>> sets(bins);
  util::TimeBinSeries series{start.seconds_since_epoch(),
                             bin.total_micros() / 1'000'000, bins};
  for (const auto index : db.by_second_level(sld)) {
    const auto& flow = db.flow(index);
    const auto t = flow.first_packet.seconds_since_epoch();
    if (!series.in_range(t)) continue;
    sets[series.bin_of(t)].insert(flow.key.server_ip.value());
  }
  for (std::size_t b = 0; b < bins; ++b)
    series.add(series.bin_start_seconds(b),
               static_cast<double>(sets[b].size()));
  return series;
}

util::TimeBinSeries distinct_fqdns_timeline(
    const core::FlowDatabase& db, const orgdb::OrgDb& orgs,
    const std::string& provider, util::Timestamp start, util::Timestamp end,
    util::Duration bin) {
  const std::size_t bins = bin_count(start, end, bin);
  std::vector<std::unordered_set<std::string>> sets(bins);
  util::TimeBinSeries series{start.seconds_since_epoch(),
                             bin.total_micros() / 1'000'000, bins};
  for (const auto& flow : db.flows()) {
    if (!flow.labeled()) continue;
    const auto t = flow.first_packet.seconds_since_epoch();
    if (!series.in_range(t)) continue;
    if (orgs.lookup_or(flow.key.server_ip) != provider) continue;
    sets[series.bin_of(t)].emplace(flow.fqdn);
  }
  for (std::size_t b = 0; b < bins; ++b)
    series.add(series.bin_start_seconds(b),
               static_cast<double>(sets[b].size()));
  return series;
}

std::size_t distinct_fqdns_total(const core::FlowDatabase& db,
                                 const orgdb::OrgDb& orgs,
                                 const std::string& provider) {
  std::unordered_set<std::string> fqdns;
  for (const auto& flow : db.flows()) {
    if (flow.labeled() &&
        orgs.lookup_or(flow.key.server_ip) == provider)
      fqdns.emplace(flow.fqdn);
  }
  return fqdns.size();
}

BirthProcess birth_process(const core::FlowDatabase& db,
                           util::Timestamp start, util::Timestamp end,
                           util::Duration bin) {
  BirthProcess out;
  const std::size_t bins = bin_count(start, end, bin);
  const std::int64_t bin_s = bin.total_micros() / 1'000'000;
  const std::int64_t start_s = start.seconds_since_epoch();

  // Flows are insertion-ordered but not necessarily time-sorted: sort
  // indices by first packet.
  std::vector<core::FlowDatabase::FlowIndex> order(db.size());
  for (std::uint32_t i = 0; i < db.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return db.flow(a).first_packet < db.flow(b).first_packet;
            });

  std::unordered_set<std::string> fqdns;
  std::unordered_set<std::string> slds;
  std::unordered_set<std::uint32_t> servers;
  std::size_t next = 0;
  for (std::size_t b = 0; b < bins; ++b) {
    const std::int64_t bin_end = start_s + static_cast<std::int64_t>(b + 1) * bin_s;
    while (next < order.size() &&
           db.flow(order[next]).first_packet.seconds_since_epoch() <
               bin_end) {
      // Labeled flows only: the paper tracks entities in the labeled-flow
      // database (unlabeled P2P peers would make serverIPs grow forever).
      const auto& flow = db.flow(order[next]);
      if (flow.labeled()) {
        fqdns.emplace(flow.fqdn);
        slds.insert(std::string{flow.second_level()});
        servers.insert(flow.key.server_ip.value());
      }
      ++next;
    }
    out.bin_start_seconds.push_back(start_s +
                                    static_cast<std::int64_t>(b) * bin_s);
    out.unique_fqdns.push_back(fqdns.size());
    out.unique_slds.push_back(slds.size());
    out.unique_servers.push_back(servers.size());
  }
  return out;
}

TrackerTimeline tracker_timeline(const core::FlowDatabase& db,
                                 const std::vector<std::string>& trackers,
                                 util::Timestamp start, util::Timestamp end,
                                 util::Duration bin) {
  TrackerTimeline out;
  const std::size_t bins = bin_count(start, end, bin);
  const std::int64_t bin_s = bin.total_micros() / 1'000'000;
  const std::int64_t start_s = start.seconds_since_epoch();
  for (std::size_t b = 0; b < bins; ++b)
    out.bin_start_seconds.push_back(start_s +
                                    static_cast<std::int64_t>(b) * bin_s);

  struct Row {
    std::string fqdn;
    std::vector<bool> active;
    std::int64_t first_bin = -1;
  };
  std::vector<Row> rows;
  for (const auto& fqdn : trackers) {
    Row row;
    row.fqdn = fqdn;
    row.active.assign(bins, false);
    for (const auto index : db.by_fqdn(fqdn)) {
      const auto t = db.flow(index).first_packet.seconds_since_epoch();
      const auto b = (t - start_s) / bin_s;
      if (b < 0 || static_cast<std::size_t>(b) >= bins) continue;
      row.active[static_cast<std::size_t>(b)] = true;
      if (row.first_bin < 0 || b < row.first_bin) row.first_bin = b;
    }
    if (row.first_bin >= 0) rows.push_back(std::move(row));
  }
  // Ids assigned by first observation time, as in Fig. 11.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a.first_bin < b.first_bin;
                   });
  for (auto& row : rows) {
    out.fqdns.push_back(std::move(row.fqdn));
    out.active.push_back(std::move(row.active));
  }
  return out;
}

util::TimeBinSeries dns_response_rate(
    const std::vector<core::DnsEvent>& dns_log, util::Timestamp start,
    util::Timestamp end, util::Duration bin) {
  util::TimeBinSeries series{start.seconds_since_epoch(),
                             bin.total_micros() / 1'000'000,
                             bin_count(start, end, bin)};
  for (const auto& event : dns_log)
    series.add(event.time.seconds_since_epoch());
  return series;
}

}  // namespace dnh::analytics

#include "analytics/tokenizer.hpp"

#include <cctype>

#include "dns/domain.hpp"
#include "util/strings.hpp"

namespace dnh::analytics {

std::string normalize_digits(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  bool in_digits = false;
  for (const char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!in_digits) out += 'N';
      in_digits = true;
    } else {
      // 'N' is the generic digit marker and must survive re-normalization
      // (idempotence); everything else is lower-cased.
      out += c == 'N' ? 'N'
                      : static_cast<char>(
                            std::tolower(static_cast<unsigned char>(c)));
      in_digits = false;
    }
  }
  return out;
}

std::vector<std::string> fqdn_tokens(std::string_view fqdn) {
  std::vector<std::string> out;
  const std::string_view sub = dns::subdomain_part(fqdn);
  if (sub.empty()) return out;
  // Labels first, then non-alphanumeric separators inside each label.
  for (const auto label : util::split(sub, '.')) {
    for (const auto piece : util::split_any(label, "-_~")) {
      if (!piece.empty()) out.push_back(normalize_digits(piece));
    }
  }
  return out;
}

}  // namespace dnh::analytics

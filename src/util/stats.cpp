#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <stdexcept>

namespace dnh::util {

void CdfAccumulator::add(double x, std::uint64_t count) {
  samples_.insert(samples_.end(), count, x);
  sorted_ = false;
}

void CdfAccumulator::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double CdfAccumulator::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double CdfAccumulator::quantile(double q) const {
  if (samples_.empty()) throw std::runtime_error("quantile of empty CDF");
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto n = samples_.size();
  // Ceiling rank: the smallest sample s with P(X <= s) >= q.
  std::size_t idx =
      q <= 0.0 ? 0
               : static_cast<std::size_t>(
                     std::ceil(q * static_cast<double>(n))) - 1;
  if (idx >= n) idx = n - 1;
  return samples_[idx];
}

double CdfAccumulator::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double CdfAccumulator::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double CdfAccumulator::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::vector<double> CdfAccumulator::cdf_series(
    const std::vector<double>& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(cdf_at(x));
  return out;
}

void Counter::add(const std::string& key, double weight) {
  counts_[key] += weight;
  total_ += weight;
}

double Counter::get(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> Counter::top(std::size_t k) const {
  std::vector<std::pair<std::string, double>> out(counts_.begin(),
                                                  counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (k > 0 && out.size() > k) out.resize(k);
  return out;
}

TimeBinSeries::TimeBinSeries(std::int64_t origin_seconds,
                             std::int64_t bin_seconds, std::size_t n_bins)
    : origin_{origin_seconds}, width_{bin_seconds}, values_(n_bins, 0.0) {
  assert(bin_seconds > 0);
}

std::size_t TimeBinSeries::bin_of(std::int64_t t_seconds) const {
  assert(in_range(t_seconds));
  return static_cast<std::size_t>((t_seconds - origin_) / width_);
}

bool TimeBinSeries::in_range(std::int64_t t_seconds) const {
  if (t_seconds < origin_) return false;
  const auto bin = (t_seconds - origin_) / width_;
  return static_cast<std::size_t>(bin) < values_.size();
}

void TimeBinSeries::add(std::int64_t t_seconds, double value) {
  if (in_range(t_seconds)) values_[bin_of(t_seconds)] += value;
}

std::int64_t TimeBinSeries::bin_start_seconds(std::size_t bin) const {
  return origin_ + static_cast<std::int64_t>(bin) * width_;
}

double TimeBinSeries::max_value() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, v);
  return m;
}

}  // namespace dnh::util

// Trace time types.
//
// All timestamps in the library are simulated wall-clock time carried in the
// pcap record headers, represented as microseconds since the Unix epoch.
// Strong types keep seconds/microseconds confusion out of the interfaces
// (C++ Core Guidelines I.4).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace dnh::util {

/// A span of simulated time, microsecond resolution, signed.
class Duration {
 public:
  constexpr Duration() noexcept = default;

  static constexpr Duration micros(std::int64_t us) noexcept {
    return Duration{us};
  }
  static constexpr Duration millis(std::int64_t ms) noexcept {
    return Duration{ms * 1000};
  }
  static constexpr Duration seconds(double s) noexcept {
    return Duration{static_cast<std::int64_t>(s * 1e6)};
  }
  static constexpr Duration minutes(std::int64_t m) noexcept {
    return Duration{m * 60'000'000};
  }
  static constexpr Duration hours(std::int64_t h) noexcept {
    return Duration{h * 3'600'000'000LL};
  }
  static constexpr Duration days(std::int64_t d) noexcept {
    return Duration{d * 86'400'000'000LL};
  }

  constexpr std::int64_t total_micros() const noexcept { return us_; }
  constexpr double total_seconds() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }
  constexpr double total_hours() const noexcept {
    return total_seconds() / 3600.0;
  }

  constexpr auto operator<=>(const Duration&) const noexcept = default;
  constexpr Duration operator+(Duration o) const noexcept {
    return Duration{us_ + o.us_};
  }
  constexpr Duration operator-(Duration o) const noexcept {
    return Duration{us_ - o.us_};
  }
  constexpr Duration operator*(double k) const noexcept {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const noexcept {
    return Duration{us_ / k};
  }
  constexpr double operator/(Duration o) const noexcept {
    return static_cast<double>(us_) / static_cast<double>(o.us_);
  }

 private:
  constexpr explicit Duration(std::int64_t us) noexcept : us_{us} {}
  std::int64_t us_ = 0;
};

/// An absolute instant: microseconds since the Unix epoch (UTC).
class Timestamp {
 public:
  constexpr Timestamp() noexcept = default;

  static constexpr Timestamp from_micros(std::int64_t us) noexcept {
    return Timestamp{us};
  }
  static constexpr Timestamp from_seconds(std::int64_t s) noexcept {
    return Timestamp{s * 1'000'000};
  }

  constexpr std::int64_t micros_since_epoch() const noexcept { return us_; }
  constexpr std::int64_t seconds_since_epoch() const noexcept {
    return us_ / 1'000'000;
  }

  constexpr auto operator<=>(const Timestamp&) const noexcept = default;
  constexpr Timestamp operator+(Duration d) const noexcept {
    return Timestamp{us_ + d.total_micros()};
  }
  constexpr Timestamp operator-(Duration d) const noexcept {
    return Timestamp{us_ - d.total_micros()};
  }
  constexpr Duration operator-(Timestamp o) const noexcept {
    return Duration::micros(us_ - o.us_);
  }

  /// Seconds since the preceding UTC midnight; used for diurnal curves and
  /// time-of-day bench axes.
  constexpr std::int64_t seconds_of_day() const noexcept {
    const std::int64_t s = seconds_since_epoch() % 86'400;
    return s < 0 ? s + 86'400 : s;
  }

 private:
  constexpr explicit Timestamp(std::int64_t us) noexcept : us_{us} {}
  std::int64_t us_ = 0;
};

/// Formats the time of day as "HH:MM" (UTC), as used on the paper's x-axes.
std::string format_hhmm(Timestamp t);

/// Formats a duration as a compact human string ("1.2s", "350ms", "2h").
std::string format_duration(Duration d);

}  // namespace dnh::util

// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component of the trace generator and the benchmarks draws
// from an explicitly seeded `Rng`, so a given (profile, seed) pair always
// produces byte-identical traces and therefore identical experiment output.
#pragma once

#include <cstdint>
#include <cmath>
#include <span>
#include <string>
#include <vector>

namespace dnh::util {

/// xoshiro256** PRNG seeded via splitmix64.
///
/// Chosen over `std::mt19937_64` because its output is specified independent
/// of the standard library implementation, keeping traces reproducible across
/// toolchains. Not cryptographically secure; simulation use only.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initializes the state from `seed` (splitmix64 expansion).
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value, uniform over [0, 2^64).
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Log-normal sample parameterized by the underlying normal's mu/sigma.
  double log_normal(double mu, double sigma) noexcept;

  /// Standard normal via Box-Muller.
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Pareto (heavy-tail) sample with scale `xm` > 0 and shape `alpha` > 0.
  double pareto(double xm, double alpha) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// Selects an index according to non-negative `weights` (at least one > 0).
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Uniformly selects an element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// client its own stream so per-client behaviour is order-independent.
  Rng fork() noexcept { return Rng{next_u64()}; }

 private:
  std::uint64_t s_[4]{};
};

/// Zipf(s, n) sampler over ranks {0, .., n-1} using precomputed CDF.
///
/// Models the heavy-tailed popularity of domains/organizations that drives
/// the paper's "tangled web" shape (Fig. 3: few FQDNs served by hundreds of
/// servers, long tail of one-server FQDNs).
class ZipfSampler {
 public:
  /// Builds the sampler for `n` ranks with exponent `s` (typically ~1).
  ZipfSampler(std::size_t n, double s);

  /// Samples a rank in [0, n); rank 0 is the most popular.
  std::size_t sample(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dnh::util

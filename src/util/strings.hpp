// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dnh::util {

/// Splits `s` on `sep`, keeping empty fields ("a..b" -> {"a","","b"}).
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits `s` on any character in `seps`, dropping empty fields.
std::vector<std::string_view> split_any(std::string_view s,
                                        std::string_view seps);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// ASCII lower-casing (DNS names are case-insensitive; we canonicalize).
std::string to_lower(std::string_view s);

/// True if `s` ends with `suffix` (ASCII case-insensitive).
bool iends_with(std::string_view s, std::string_view suffix);

/// True if `s` equals `t` ASCII case-insensitively.
bool iequals(std::string_view s, std::string_view t);

/// True if every character is an ASCII digit (and s is non-empty).
bool all_digits(std::string_view s);

/// Formats `n` with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t n);

/// Formats a ratio as a fixed-precision percentage, e.g. "92.3%".
std::string percent(double ratio, int decimals = 1);

}  // namespace dnh::util

#include "util/rng.hpp"

#include <algorithm>
#include <cassert>

namespace dnh::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
  assert(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + r % bound;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) noexcept {
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mu + sigma * z;
}

double Rng::log_normal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) noexcept {
  assert(xm > 0.0 && alpha > 0.0);
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform01();
  std::uint64_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= uniform01();
  }
  return n;
}

std::size_t Rng::index(std::size_t n) noexcept {
  assert(n > 0);
  return static_cast<std::size_t>(uniform(0, n - 1));
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dnh::util

// Cache-friendly open-addressing hash table for the per-packet hot path.
//
// Every lookup structure the tagging pipeline consults per packet used to
// be a node-based std::map/std::unordered_map: one heap node per entry,
// one cache miss per node on every probe. FlatHash is the SwissTable-style
// replacement (docs/performance.md "Flat-hash hot path"):
//
//  - One METADATA byte per slot (0x80 = empty, else the hash's low 7 bits,
//    "h2") in a contiguous array: a probe scans metadata — 8 bytes per
//    64-bit load, 64 slots per cache line — and touches the slot array
//    only on an h2 match, so misses usually cost a single cache line.
//  - Flat SLOT array of std::pair<K, V>: no per-entry allocation, no
//    pointer chasing; a hit reads exactly one slot.
//  - Linear probing over a power-of-two capacity. Group loads are
//    word-wise (SWAR, no SIMD dependency); the first 8 metadata bytes are
//    mirrored past the end so a group load never has to split at the
//    wrap.
//  - TOMBSTONE-FREE deletion by backward shift (Knuth 6.4 Algorithm R):
//    erasing an entry walks the cluster behind it and moves the first
//    element whose home slot lies at-or-before the hole back into it,
//    repeating until the cluster is tight again. Probes therefore stop at
//    the FIRST empty byte forever — churn-heavy tables (flow tables see
//    constant insert/erase) never accumulate tombstones and never need a
//    rehash to stay fast.
//  - reserve() pre-sizes so steady state does no allocation; growth (when
//    it does happen) doubles and re-inserts, amortized O(1).
//  - Heterogeneous lookup: find/contains/count/erase accept any key type
//    the Hash and Eq functors take (Eq defaults to the transparent
//    std::equal_to<>), so a string-keyed table can be probed with a
//    string_view without materializing a std::string.
//
// The table is NOT thread-safe (same ownership rule as every per-shard
// structure: one thread at a time, hand-off through the pipeline's
// synchronized channels). Iterators and references are invalidated by
// rehash AND by erase (backward shift moves neighbors); the sweep pattern
// used across this repo — collect keys, then erase by key — is the safe
// idiom, or use erase_if().
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace dnh::util {

/// Default bit-mixer: splitmix64 finalizer. std::hash of an integer is
/// the identity on common stdlibs; probing quality comes from this final
/// mix, so callers can hand in cheap hashes without thinking about it.
inline std::uint64_t flat_hash_mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<>>
class FlatHash {
 public:
  using value_type = std::pair<K, V>;

  FlatHash() = default;
  ~FlatHash() { destroy(); }

  FlatHash(const FlatHash& other) { copy_from(other); }
  FlatHash& operator=(const FlatHash& other) {
    if (this != &other) {
      destroy();
      copy_from(other);
    }
    return *this;
  }
  FlatHash(FlatHash&& other) noexcept { steal(other); }
  FlatHash& operator=(FlatHash&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }

  /// Forward iterator over occupied slots, yielding pair<K, V>&. Scan
  /// order is metadata order: stable between mutations, meaningless as an
  /// ordering — deterministic consumers sort, exactly as they did with
  /// std::unordered_map.
  template <bool Const>
  class Iter {
   public:
    using table_t = std::conditional_t<Const, const FlatHash, FlatHash>;
    using ref_t = std::conditional_t<Const, const value_type, value_type>&;
    using ptr_t = std::conditional_t<Const, const value_type, value_type>*;

    Iter() = default;
    Iter(table_t* table, std::size_t index) : table_{table}, index_{index} {
      skip_empty();
    }
    ref_t operator*() const { return table_->slots_[index_]; }
    ptr_t operator->() const { return &table_->slots_[index_]; }
    Iter& operator++() {
      ++index_;
      skip_empty();
      return *this;
    }
    bool operator==(const Iter& o) const { return index_ == o.index_; }
    bool operator!=(const Iter& o) const { return index_ != o.index_; }

   private:
    friend class FlatHash;
    void skip_empty() {
      while (index_ < table_->capacity_ &&
             table_->ctrl_[index_] == kEmpty)
        ++index_;
    }
    table_t* table_ = nullptr;
    std::size_t index_ = 0;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator{this, 0}; }
  iterator end() { return iterator{this, capacity_}; }
  const_iterator begin() const { return const_iterator{this, 0}; }
  const_iterator end() const { return const_iterator{this, capacity_}; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Ensures `n` entries fit without rehashing: the config-driven sizing
  /// hook that makes steady state allocation-free (docs/performance.md).
  void reserve(std::size_t n) {
    if (n == 0) return;
    // Grow until n stays strictly under the 7/8 load limit.
    std::size_t cap = capacity_ ? capacity_ : kMinCapacity;
    while (n >= cap - cap / 8) cap <<= 1;
    if (cap > capacity_) rehash(cap);
  }

  void clear() {
    if (capacity_ == 0) return;
    for (std::size_t i = 0; i < capacity_ && size_ > 0; ++i) {
      if (ctrl_[i] != kEmpty) {
        slots_[i].~value_type();
        --size_;
      }
    }
    std::memset(ctrl_, kEmpty, capacity_ + kGroup);
    size_ = 0;
  }

  template <typename Q>
  iterator find(const Q& key) {
    const std::size_t i = find_index(key);
    return i == kNotFound ? end() : iterator{this, i};
  }
  template <typename Q>
  const_iterator find(const Q& key) const {
    const std::size_t i = find_index(key);
    return i == kNotFound ? end() : const_iterator{this, i};
  }
  template <typename Q>
  bool contains(const Q& key) const {
    return find_index(key) != kNotFound;
  }
  template <typename Q>
  std::size_t count(const Q& key) const {
    return contains(key) ? 1 : 0;
  }

  /// Inserts value-initialized V under `key` if absent. Returns the slot
  /// and whether it was inserted — the try_emplace shape the resolver and
  /// flow table use.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const std::uint64_t h = mixed(key);
    std::size_t i = find_index_hashed(key, h);
    if (i != kNotFound) return {iterator{this, i}, false};
    i = insert_slot(h);
    // dnh-analyze: allow(alloc, placement new into the preallocated slot
    // array -- constructs in place, never touches the heap)
    ::new (&slots_[i]) value_type{
        std::piecewise_construct, std::forward_as_tuple(key),
        std::forward_as_tuple(std::forward<Args>(args)...)};
    return {iterator{this, i}, true};
  }

  std::pair<iterator, bool> emplace(const K& key, V value) {
    return try_emplace(key, std::move(value));
  }

  std::pair<iterator, bool> insert_or_assign(const K& key, V value) {
    auto [it, inserted] = try_emplace(key, std::move(value));
    if (!inserted) it->second = std::move(value);
    return {it, inserted};
  }

  V& operator[](const K& key) { return try_emplace(key).first->second; }

  /// Erases by key; returns how many entries were removed (0 or 1).
  template <typename Q>
  std::size_t erase(const Q& key) {
    const std::size_t i = find_index(key);
    if (i == kNotFound) return 0;
    erase_index(i);
    return 1;
  }

  /// Erases the entry an iterator points at. The backward shift moves
  /// later cluster members, so the iterator (and every other one) is
  /// invalidated — do not continue a scan through it; use erase_if().
  void erase(iterator it) { erase_index(it.index_); }

  /// Erases every entry matching `pred(const value_type&)`, backward
  /// shift handled correctly mid-scan. Returns the number erased.
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t erased = 0;
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (ctrl_[i] == kEmpty) continue;
      if (!pred(const_cast<const value_type&>(slots_[i]))) continue;
      erase_index(i);
      ++erased;
      // The shift may have moved an unexamined element into slot i (from
      // later in this cluster) — re-examine it. An element pulled across
      // the wrap (cluster spanning the array end) lands at an index we
      // already passed; it was examined there only if it sat there
      // before, so re-scan from the cluster start is not needed: wrapped
      // movers come from indices < i that we already visited.
      --i;
    }
    return erased;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0x80;
  static constexpr std::size_t kGroup = 8;  ///< SWAR probe width (bytes)
  static constexpr std::size_t kMinCapacity = 8;
  static constexpr std::size_t kNotFound = ~std::size_t{0};

  template <typename Q>
  std::uint64_t mixed(const Q& key) const {
    return flat_hash_mix(static_cast<std::uint64_t>(Hash{}(key)));
  }
  static std::uint8_t h2_of(std::uint64_t h) noexcept {
    return static_cast<std::uint8_t>(h & 0x7f);
  }

  /// Metadata write with the wrap mirror: the first kGroup bytes are
  /// replicated at ctrl_[capacity_..capacity_+kGroup) so an unaligned
  /// group load starting near the end reads valid bytes.
  void set_ctrl(std::size_t i, std::uint8_t v) noexcept {
    ctrl_[i] = v;
    if (i < kGroup) ctrl_[capacity_ + i] = v;
  }

  static std::uint64_t load_group(const std::uint8_t* p) noexcept {
    std::uint64_t g;
    std::memcpy(&g, p, sizeof g);  // little-endian assumed (x86/ARM)
    return g;
  }
  /// SWAR zero-byte detector: bit 7 of each byte set where the byte is 0.
  static std::uint64_t match_zero(std::uint64_t x) noexcept {
    return (x - 0x0101010101010101ULL) & ~x & 0x8080808080808080ULL;
  }
  /// Bytes equal to `b` (b < 0x80).
  static std::uint64_t match_byte(std::uint64_t g, std::uint8_t b) noexcept {
    return match_zero(g ^ (0x0101010101010101ULL * b));
  }
  /// Bytes with the empty bit set.
  static std::uint64_t match_empty(std::uint64_t g) noexcept {
    return g & 0x8080808080808080ULL;
  }
  static unsigned lowest_byte_index(std::uint64_t mask) noexcept {
    return static_cast<unsigned>(__builtin_ctzll(mask)) / 8;
  }

  template <typename Q>
  std::size_t find_index(const Q& key) const {
    if (size_ == 0) return kNotFound;
    return find_index_hashed(key, mixed(key));
  }

  // dnh-analyze: hot
  template <typename Q>
  std::size_t find_index_hashed(const Q& key, std::uint64_t h) const {
    if (capacity_ == 0) return kNotFound;
    const std::uint8_t h2 = h2_of(h);
    std::size_t idx = (h >> 7) & mask_;
    // Linear probing in kGroup strides. Within a group, candidates are
    // checked left-to-right but only up to the first empty byte: the
    // cluster containing `key` is contiguous from its home slot (the
    // backward-shift invariant), so a genuine match can never sit past an
    // empty, and anything after one is another cluster's metadata whose
    // coincidental h2 match the key comparison would reject anyway.
    while (true) {
      const std::uint64_t group = load_group(ctrl_ + idx);
      std::uint64_t candidates = match_byte(group, h2);
      const std::uint64_t empties = match_empty(group);
      if (empties) {
        const std::uint64_t before_empty =
            (empties & (~empties + 1)) - 1;  // bits below the first empty
        candidates &= before_empty;
      }
      while (candidates) {
        const std::size_t slot =
            (idx + lowest_byte_index(candidates)) & mask_;
        if (Eq{}(slots_[slot].first, key)) return slot;
        candidates &= candidates - 1;
      }
      if (empties) return kNotFound;
      idx = (idx + kGroup) & mask_;
    }
  }

  /// First empty slot on `h`'s probe chain; caller constructs into it.
  /// Grows first when at the load limit, so the chain always terminates.
  std::size_t insert_slot(std::uint64_t h) {
    if (size_ + 1 > max_load()) rehash(capacity_ ? capacity_ * 2 : kMinCapacity);
    std::size_t idx = (h >> 7) & mask_;
    while (true) {
      const std::uint64_t empties = match_empty(load_group(ctrl_ + idx));
      if (empties) {
        const std::size_t slot = (idx + lowest_byte_index(empties)) & mask_;
        set_ctrl(slot, h2_of(h));
        ++size_;
        return slot;
      }
      idx = (idx + kGroup) & mask_;
    }
  }

  /// Backward-shift deletion: restore the "clusters are contiguous"
  /// invariant without tombstones. Walk forward from the hole; the first
  /// element whose home position is NOT inside (hole, here] can legally
  /// move back into the hole (the hole lies on its probe path); move it
  /// and the hole advances. An empty byte ends the cluster.
  void erase_index(std::size_t hole) {
    slots_[hole].~value_type();
    --size_;
    std::size_t probe = hole;
    while (true) {
      probe = (probe + 1) & mask_;
      if (ctrl_[probe] == kEmpty) break;
      const std::size_t home = (mixed(slots_[probe].first) >> 7) & mask_;
      // Cyclic distance from home: `probe` sits dist_probe steps down its
      // chain; the hole sits dist_hole steps. The element may move to the
      // hole iff the hole is EARLIER on its chain.
      const std::size_t dist_probe = (probe - home) & mask_;
      const std::size_t dist_hole = (hole - home) & mask_;
      if (dist_hole < dist_probe) {
        // dnh-analyze: allow(alloc, placement new moving a slot into the
        // hole during backward-shift deletion -- no heap allocation)
        ::new (&slots_[hole]) value_type{std::move(slots_[probe])};
        slots_[probe].~value_type();
        set_ctrl(hole, ctrl_[probe]);
        hole = probe;
      }
    }
    set_ctrl(hole, kEmpty);
  }

  std::size_t max_load() const noexcept {
    return capacity_ - capacity_ / 8;  // 7/8 occupancy ceiling
  }

  void rehash(std::size_t new_capacity) {
    FlatHash old;
    old.steal(*this);
    allocate(new_capacity);
    if (old.capacity_ == 0) return;
    for (std::size_t i = 0; i < old.capacity_; ++i) {
      if (old.ctrl_[i] == kEmpty) continue;
      const std::uint64_t h = mixed(old.slots_[i].first);
      const std::size_t slot = insert_slot(h);
      // dnh-analyze: allow(alloc, placement new re-seating an entry into
      // the freshly allocated slot array; the growth allocation itself is
      // amortized and pre-empted by reserve() on the hot tables)
      ::new (&slots_[slot]) value_type{std::move(old.slots_[i])};
    }
    // `old` destroys the moved-out shells on scope exit.
  }

  void allocate(std::size_t cap) {
    capacity_ = cap;
    mask_ = cap - 1;
    size_ = 0;
    // One block: metadata (plus the wrap mirror) in front, slots behind,
    // slot alignment respected because the metadata span is rounded up.
    const std::size_t ctrl_bytes =
        (cap + kGroup + alignof(value_type) - 1) &
        ~(alignof(value_type) - 1);
    const std::size_t bytes = ctrl_bytes + cap * sizeof(value_type);
    // Plain operator new unless the slot type is over-aligned: keeps the
    // allocation visible to tools (benchmarks, sanitizers) that override
    // only the unaligned global forms.
    if constexpr (alignof(value_type) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      block_ = ::operator new(bytes, std::align_val_t{alignof(value_type)});
    } else {
      block_ = ::operator new(bytes);
    }
    ctrl_ = static_cast<std::uint8_t*>(block_);
    slots_ = reinterpret_cast<value_type*>(
        static_cast<std::uint8_t*>(block_) + ctrl_bytes);
    std::memset(ctrl_, kEmpty, cap + kGroup);
  }

  void destroy() {
    if (block_ == nullptr) return;
    for (std::size_t i = 0; i < capacity_ && size_ > 0; ++i) {
      if (ctrl_[i] != kEmpty) {
        slots_[i].~value_type();
        --size_;
      }
    }
    if constexpr (alignof(value_type) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      ::operator delete(block_, std::align_val_t{alignof(value_type)});
    } else {
      ::operator delete(block_);
    }
    block_ = nullptr;
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = mask_ = size_ = 0;
  }

  void copy_from(const FlatHash& other) {
    block_ = nullptr;
    ctrl_ = nullptr;
    slots_ = nullptr;
    capacity_ = mask_ = size_ = 0;
    if (other.size_ == 0) return;
    reserve(other.size_);
    for (std::size_t i = 0; i < other.capacity_; ++i) {
      if (other.ctrl_[i] == kEmpty) continue;
      const std::uint64_t h = mixed(other.slots_[i].first);
      const std::size_t slot = insert_slot(h);
      ::new (&slots_[slot]) value_type{other.slots_[i]};
    }
  }

  void steal(FlatHash& other) noexcept {
    block_ = std::exchange(other.block_, nullptr);
    ctrl_ = std::exchange(other.ctrl_, nullptr);
    slots_ = std::exchange(other.slots_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
    mask_ = std::exchange(other.mask_, 0);
    size_ = std::exchange(other.size_, 0);
  }

  void* block_ = nullptr;
  std::uint8_t* ctrl_ = nullptr;    ///< capacity_ + kGroup metadata bytes
  value_type* slots_ = nullptr;     ///< capacity_ flat slots
  std::size_t capacity_ = 0;        ///< power of two (or 0 before first use)
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dnh::util

// Aligned ASCII table / sparkline rendering for the bench reports.
//
// Every bench prints the paper's table rows (or figure series) next to the
// measured values; this keeps that output legible and uniform.
#pragma once

#include <string>
#include <vector>

namespace dnh::util {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with a separator under the header. Rows shorter than the header
  /// are padded with empty cells.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders `values` as a unicode block-character sparkline (one char per
/// value, scaled to the series max); used for figure-shaped bench output.
std::string sparkline(const std::vector<double>& values);

/// Renders a horizontal bar of width proportional to value/max (for CDF and
/// timeline rows), `width` characters at full scale.
std::string hbar(double value, double max, int width = 40);

}  // namespace dnh::util

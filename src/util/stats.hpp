// Statistics accumulators used by the analytics modules and the benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dnh::util {

/// Collects samples and answers quantile / CDF queries; backs every CDF
/// figure reproduction (Figs. 3, 12, 13).
class CdfAccumulator {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add(double x, std::uint64_t count);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  /// P(X <= x). Returns 0 for an empty accumulator.
  double cdf_at(double x) const;

  /// Smallest sample s with P(X <= s) >= q, q in [0,1].
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Evaluates the CDF at each of `xs`; convenient for printing figure series.
  std::vector<double> cdf_series(const std::vector<double>& xs) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Counts occurrences of string keys and reports the top-k; used for the
/// content-discovery and service-tag tables.
class Counter {
 public:
  void add(const std::string& key, double weight = 1.0);

  double get(const std::string& key) const;
  std::size_t distinct() const noexcept { return counts_.size(); }
  double total() const noexcept { return total_; }

  /// Entries sorted by descending weight (ties broken by key for
  /// determinism), truncated to `k` (0 = all).
  std::vector<std::pair<std::string, double>> top(std::size_t k = 0) const;

 private:
  std::map<std::string, double> counts_;
  double total_ = 0.0;
};

/// Fixed-width time-bin series: maps timestamps to bins and accumulates a
/// value per bin; backs the timeline figures (Figs. 4, 5, 11, 14).
class TimeBinSeries {
 public:
  /// Bins of `bin_seconds` starting at `origin_seconds` (epoch seconds).
  TimeBinSeries(std::int64_t origin_seconds, std::int64_t bin_seconds,
                std::size_t n_bins);

  std::size_t bin_of(std::int64_t t_seconds) const;
  bool in_range(std::int64_t t_seconds) const;
  void add(std::int64_t t_seconds, double value = 1.0);

  std::size_t size() const noexcept { return values_.size(); }
  double at(std::size_t bin) const { return values_.at(bin); }
  std::int64_t bin_start_seconds(std::size_t bin) const;
  double max_value() const;

 private:
  std::int64_t origin_;
  std::int64_t width_;
  std::vector<double> values_;
};

}  // namespace dnh::util

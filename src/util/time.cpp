#include "util/time.hpp"

#include <cstdio>

namespace dnh::util {

std::string format_hhmm(Timestamp t) {
  const std::int64_t sod = t.seconds_of_day();
  char buf[8];
  std::snprintf(buf, sizeof buf, "%02lld:%02lld",
                static_cast<long long>(sod / 3600),
                static_cast<long long>((sod / 60) % 60));
  return buf;
}

std::string format_duration(Duration d) {
  const double s = d.total_seconds();
  char buf[32];
  if (s < 0.001) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(d.total_micros()));
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", s * 1e3);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1fs", s);
  } else if (s < 7200.0) {
    std::snprintf(buf, sizeof buf, "%.1fmin", s / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1fh", s / 3600.0);
  }
  return buf;
}

}  // namespace dnh::util

// Capability-annotated mutex wrapper: std::mutex carries no thread-safety
// attributes on libstdc++, so Clang's analysis cannot see its lock/unlock.
// util::Mutex is a zero-overhead wrapper that does, plus the RAII guard
// and condition variable to use with it. All project code that guards
// state with a mutex should use these (dnh-lint and the -Wthread-safety
// build both assume it); see docs/static-analysis.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace dnh::util {

class CondVar;
class MutexLock;

/// A std::mutex the thread-safety analysis understands. Members guarded
/// by a Mutex `mu` are declared `T member DNH_GUARDED_BY(mu);`.
class DNH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DNH_ACQUIRE() { mu_.lock(); }
  void unlock() DNH_RELEASE() { mu_.unlock(); }
  bool try_lock() DNH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock for Mutex (the std::lock_guard/unique_lock replacement at
/// annotated call sites). Scoped: the analysis knows the capability is
/// held from construction to destruction.
class DNH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DNH_ACQUIRE(mu) : lock_{mu.mu_} {}
  ~MutexLock() DNH_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. The analysis treats
/// the mutex as held across wait()/wait_for() — the standard reading of a
/// condition wait (the lock is released and reacquired inside, but every
/// guarded access around the call happens with it held). Waits are
/// unconditional (no predicate overloads): loop on the guarded predicate
/// at the call site so the analysis can check it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Caller must hold `lock`; may wake spuriously.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lock_, d);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dnh::util

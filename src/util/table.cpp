#include "util/table.hpp"

#include <algorithm>

namespace dnh::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_{std::move(header)} {}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      line += cell;
      if (i + 1 < widths.size())
        line += std::string(widths[i] - cell.size() + 2, ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  double max = 0.0;
  for (double v : values) max = std::max(max, v);
  std::string out;
  for (double v : values) {
    int level = max <= 0.0 ? 0 : static_cast<int>(v / max * 8.0 + 0.5);
    level = std::clamp(level, 0, 8);
    out += kBlocks[level];
  }
  return out;
}

std::string hbar(double value, double max, int width) {
  if (max <= 0.0) return {};
  int n = static_cast<int>(value / max * width + 0.5);
  n = std::clamp(n, 0, width);
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace dnh::util

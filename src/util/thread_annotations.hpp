// Clang Thread Safety Analysis annotation macros (DNH_ prefix).
//
// Under Clang with -Wthread-safety (the DNH_THREAD_SAFETY CMake option,
// enforced as -Werror=thread-safety by the static-analysis CI job) these
// expand to the capability attributes and the compiler PROVES the lock
// discipline they declare: a DNH_GUARDED_BY member read without its mutex
// held is a compile error, not a race a test may or may not hit. Under
// GCC (which has no such analysis) every macro expands to nothing, so the
// annotations are free documentation.
//
// Vocabulary (see docs/static-analysis.md for the how-to):
//  - DNH_CAPABILITY marks a type as a lockable capability (util::Mutex).
//  - DNH_GUARDED_BY(mu) on a member: every access requires `mu` held.
//  - DNH_PT_GUARDED_BY(mu): the pointee (not the pointer) is guarded.
//  - DNH_REQUIRES(mu) on a function: callers must already hold `mu`.
//  - DNH_ACQUIRE/DNH_RELEASE: the function takes / drops the capability.
//  - DNH_EXCLUDES(mu): callers must NOT hold `mu` (deadlock guard).
//  - DNH_NO_THREAD_SAFETY_ANALYSIS: escape hatch for code the analysis
//    cannot model; always pair with a comment saying why it is safe.
#pragma once

#if defined(__clang__)
#define DNH_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DNH_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

#define DNH_CAPABILITY(x) DNH_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define DNH_SCOPED_CAPABILITY DNH_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define DNH_GUARDED_BY(x) DNH_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define DNH_PT_GUARDED_BY(x) DNH_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define DNH_ACQUIRED_BEFORE(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define DNH_ACQUIRED_AFTER(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define DNH_REQUIRES(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define DNH_REQUIRES_SHARED(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define DNH_ACQUIRE(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define DNH_ACQUIRE_SHARED(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define DNH_RELEASE(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define DNH_RELEASE_SHARED(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define DNH_TRY_ACQUIRE(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define DNH_EXCLUDES(...) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define DNH_ASSERT_CAPABILITY(x) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define DNH_RETURN_CAPABILITY(x) \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define DNH_NO_THREAD_SAFETY_ANALYSIS \
  DNH_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

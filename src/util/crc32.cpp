#include "util/crc32.hpp"

#include <array>

namespace dnh::util {
namespace {

// Table generated at static-init time from the reflected polynomial; a
// 256-entry byte-at-a-time table keeps the hot loop branch-free without
// hand-maintaining 1 KiB of literals.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i)
    state = kTable[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

std::uint32_t crc32_ieee(const void* data, std::size_t size) noexcept {
  return crc32_final(crc32_update(kCrc32Init, data, size));
}

}  // namespace dnh::util

#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace dnh::util {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_any(std::string_view s,
                                        std::string_view seps) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || seps.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

namespace {
template <typename V>
std::string join_impl(const V& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view s, std::string_view t) {
  if (s.size() != t.size()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(t[i])))
      return false;
  }
  return true;
}

bool iends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         iequals(s.substr(s.size() - suffix.size()), suffix);
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

std::string percent(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, ratio * 100.0);
  return buf;
}

}  // namespace dnh::util

// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320): the integrity
// check framing every spill-segment record and manifest-journal line
// (docs/recovery.md). Chosen over the internet checksum in net/checksum
// because single-bit flips and short burst errors — the faults torn
// writes and bit rot actually produce — must be detected with near
// certainty, and CRC32's burst-detection guarantees cover them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dnh::util {

/// One-shot CRC32 of a byte range (IEEE, reflected, init/final 0xFFFFFFFF).
std::uint32_t crc32_ieee(const void* data, std::size_t size) noexcept;

inline std::uint32_t crc32_ieee(std::string_view s) noexcept {
  return crc32_ieee(s.data(), s.size());
}

/// Incremental form: feed `crc32_update` successive chunks starting from
/// `kCrc32Init`, then finalize. Equivalent to the one-shot call.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) noexcept;
inline constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace dnh::util

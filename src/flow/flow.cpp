#include "flow/flow.hpp"

namespace dnh::flow {

std::string_view protocol_class_name(ProtocolClass c) noexcept {
  switch (c) {
    case ProtocolClass::kUnknown: return "UNKNOWN";
    case ProtocolClass::kHttp: return "HTTP";
    case ProtocolClass::kTls: return "TLS";
    case ProtocolClass::kP2p: return "P2P";
    case ProtocolClass::kDns: return "DNS";
    case ProtocolClass::kOther: return "OTHER";
  }
  return "?";
}

}  // namespace dnh::flow

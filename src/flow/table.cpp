#include "flow/table.hpp"

#include <algorithm>
#include <vector>

namespace dnh::flow {

FlowTable::FlowTable(TableConfig config) : config_{config} {
  // Size from config so steady state never rehashes (reasm state exists
  // only for TCP flows still filling their head bytes — typically a
  // fraction of live flows).
  flows_.reserve(config_.expected_flows);
  reasm_.reserve(config_.expected_flows / 4 + 1);
}

OrientedKey orient(const packet::DecodedPacket& pkt) {
  OrientedKey out;
  const auto src = pkt.src_v4();
  const auto dst = pkt.dst_v4();
  const std::uint16_t sport = pkt.src_port();
  const std::uint16_t dport = pkt.dst_port();
  out.key.transport = pkt.is_tcp() ? Transport::kTcp : Transport::kUdp;

  bool src_is_client;
  if (pkt.is_tcp() && pkt.tcp().syn() && !pkt.tcp().ack_flag()) {
    src_is_client = true;  // SYN sender initiates
  } else if (pkt.is_tcp() && pkt.tcp().syn() && pkt.tcp().ack_flag()) {
    src_is_client = false;  // SYN/ACK sender is the server
  } else if ((sport < 1024) != (dport < 1024)) {
    src_is_client = dport < 1024;
  } else if (sport != dport) {
    src_is_client = dport < sport;
  } else {
    src_is_client = src < dst;
  }

  if (src_is_client) {
    out.key.client_ip = src;
    out.key.server_ip = dst;
    out.key.client_port = sport;
    out.key.server_port = dport;
    out.client_to_server = true;
  } else {
    out.key.client_ip = dst;
    out.key.server_ip = src;
    out.key.client_port = dport;
    out.key.server_port = sport;
    out.client_to_server = false;
  }
  return out;
}

void FlowTable::on_packet(const packet::DecodedPacket& pkt) {
  ++packets_;

  // Prefer an existing flow in either orientation over re-inferring: a
  // mid-flow packet must never fork a second record.
  OrientedKey oriented = orient(pkt);
  auto it = flows_.find(oriented.key);
  if (it == flows_.end()) {
    FlowKey flipped;
    flipped.client_ip = oriented.key.server_ip;
    flipped.server_ip = oriented.key.client_ip;
    flipped.client_port = oriented.key.server_port;
    flipped.server_port = oriented.key.client_port;
    flipped.transport = oriented.key.transport;
    const auto flipped_it = flows_.find(flipped);
    if (flipped_it != flows_.end()) {
      it = flipped_it;
      oriented.key = flipped;
      oriented.client_to_server = !oriented.client_to_server;
    }
  }

  // Arrival-driven idle split: a packet resuming a 5-tuple that has been
  // idle past the timeout starts a NEW flow, regardless of whether a sweep
  // already exported the old one. This makes flow boundaries a pure
  // function of the packet stream (timestamps), not of sweep cadence —
  // the property the sharded pipeline's deterministic merge relies on,
  // since per-shard tables sweep at different stream points than one
  // global table would.
  if (it != flows_.end() &&
      pkt.timestamp - it->second.last_packet > config_.idle_timeout) {
    FlowRecord done = std::move(it->second);
    flows_.erase(it);
    export_flow(std::move(done));
    // Re-infer orientation for the fresh flow from this packet alone.
    oriented = orient(pkt);
    it = flows_.end();
  }

  const bool is_new = it == flows_.end();
  if (is_new) {
    FlowRecord record;
    record.key = oriented.key;
    record.first_packet = pkt.timestamp;
    it = flows_.emplace(oriented.key, std::move(record)).first;
    ++flows_seen_;
  }

  FlowRecord& flow = it->second;
  flow.last_packet = std::max(flow.last_packet, pkt.timestamp);
  // Wire bytes at the IP layer: header + claimed payload.
  const std::uint64_t wire_bytes =
      pkt.is_ipv4() ? pkt.ipv4().total_length
                    : 40 + std::get<packet::Ipv6Header>(pkt.ip).payload_length;

  append_head(flow, oriented.client_to_server, pkt);

  if (oriented.client_to_server) {
    ++flow.packets_c2s;
    flow.bytes_c2s += wire_bytes;
  } else {
    ++flow.packets_s2c;
    flow.bytes_s2c += wire_bytes;
  }

  if (pkt.is_tcp()) {
    const auto& tcp = pkt.tcp();
    if (tcp.syn()) flow.saw_syn = true;
    if (tcp.rst()) flow.saw_rst = true;
    if (tcp.fin()) {
      if (oriented.client_to_server)
        flow.saw_fin_client = true;
      else
        flow.saw_fin_server = true;
    }
  }

  if (is_new && on_flow_start_) on_flow_start_(flow);

  if (flow.finished()) {
    FlowRecord done = std::move(it->second);
    flows_.erase(it);
    export_flow(std::move(done));
  }

  if (packets_ % config_.sweep_interval_packets == 0)
    sweep_idle(pkt.timestamp);
}

void FlowTable::append_head(FlowRecord& flow, bool c2s,
                            const packet::DecodedPacket& pkt) {
  net::Bytes& head = c2s ? flow.head_c2s : flow.head_s2c;
  if (head.size() >= config_.head_bytes) return;

  auto take_into_head = [&](net::BytesView payload) {
    const std::size_t take = std::min<std::size_t>(
        payload.size(), config_.head_bytes - head.size());
    head.insert(head.end(), payload.begin(), payload.begin() + take);
  };

  // UDP has no sequencing: datagrams append in arrival order.
  if (!pkt.is_tcp()) {
    if (!pkt.payload.empty()) take_into_head(pkt.payload);
    return;
  }

  DirectionReasm& reasm = reasm_[flow.key].dir[c2s ? 0 : 1];
  if (reasm.gave_up) return;
  const std::uint32_t seq = pkt.tcp().seq;
  // A SYN pins the stream origin exactly (data starts at ISN+1); without
  // one (mid-stream capture) the first payload segment seen anchors it.
  if (pkt.tcp().syn()) {
    reasm.next_seq = seq + 1;
    reasm.synced = true;
  }
  if (pkt.payload.empty() && pkt.wire_payload_length == 0) return;
  if (!reasm.synced) {
    reasm.next_seq = seq;
    reasm.synced = true;
  }

  constexpr std::size_t kMaxPending = 8;
  // Tolerate stacks whose first data segment does not sit at ISN+1 (TCP
  // fast open, odd middleboxes): while nothing has been captured yet, a
  // "too old" payload re-anchors the stream instead of being dropped.
  if (seq != reasm.next_seq && head.empty() && reasm.pending.empty() &&
      !pkt.payload.empty() && seq < reasm.next_seq) {
    reasm.next_seq = seq;
  }
  if (seq == reasm.next_seq) {
    take_into_head(pkt.payload);
    // Sequence advances by the WIRE length; a snaplen-truncated segment
    // leaves an unfillable hole, so head capture stops there.
    reasm.next_seq += pkt.wire_payload_length;
    if (pkt.payload.size() < pkt.wire_payload_length) {
      reasm.gave_up = true;
      reasm.pending.clear();
      return;
    }
    // Drain any parked segments that are now contiguous.
    auto it = reasm.pending.find(reasm.next_seq);
    while (it != reasm.pending.end()) {
      take_into_head(it->second);
      reasm.next_seq += static_cast<std::uint32_t>(it->second.size());
      reasm.pending.erase(it);
      it = reasm.pending.find(reasm.next_seq);
    }
  } else if (seq > reasm.next_seq && !pkt.payload.empty() &&
             pkt.payload.size() == pkt.wire_payload_length &&
             reasm.pending.size() < kMaxPending) {
    reasm.pending.emplace(
        seq, net::Bytes{pkt.payload.begin(), pkt.payload.end()});
  }
  // seq < next_seq: retransmission of already-consumed data — ignore.
}

void FlowTable::sweep_idle(util::Timestamp now) {
  std::vector<FlowKey> stale;
  for (const auto& [key, flow] : flows_) {
    if (now - flow.last_packet > config_.idle_timeout) stale.push_back(key);
  }
  for (const auto& key : stale) {
    auto it = flows_.find(key);
    FlowRecord done = std::move(it->second);
    flows_.erase(it);
    export_flow(std::move(done));
  }
}

void FlowTable::flush() {
  std::vector<FlowKey> keys;
  keys.reserve(flows_.size());
  for (const auto& [key, _] : flows_) keys.push_back(key);
  // Deterministic export order regardless of hash-map iteration.
  std::sort(keys.begin(), keys.end());
  for (const auto& key : keys) {
    auto it = flows_.find(key);
    FlowRecord done = std::move(it->second);
    flows_.erase(it);
    export_flow(std::move(done));
  }
}

void FlowTable::export_flow(FlowRecord&& record) {
  reasm_.erase(record.key);  // idle-swept and flushed flows too
  if (exporter_) exporter_(std::move(record));
}

}  // namespace dnh::flow

// Flow identity and per-flow state.
//
// Flows are oriented client->server (the paper's 5-tuple Fid with clientIP
// first): orientation is inferred from the TCP handshake when visible, with
// a well-known-port heuristic as fallback for flows whose start predates
// the capture.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/bytes.hpp"
#include "net/ip.hpp"
#include "util/time.hpp"

namespace dnh::flow {

enum class Transport : std::uint8_t { kTcp, kUdp };

/// Traffic classes used throughout the evaluation (Tab. 2 buckets).
enum class ProtocolClass : std::uint8_t {
  kUnknown,
  kHttp,
  kTls,
  kP2p,
  kDns,
  kOther,
};

/// Human-readable class name ("HTTP", "TLS", ...).
std::string_view protocol_class_name(ProtocolClass c) noexcept;

/// Oriented 5-tuple.
struct FlowKey {
  net::Ipv4Address client_ip;
  net::Ipv4Address server_ip;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
  Transport transport = Transport::kTcp;

  auto operator<=>(const FlowKey&) const noexcept = default;
};

/// Aggregated per-flow state. Byte counts are wire bytes at the IP layer
/// (total-length field), so truncated captures still measure true volume.
struct FlowRecord {
  FlowKey key;
  util::Timestamp first_packet;
  util::Timestamp last_packet;
  std::uint64_t packets_c2s = 0;
  std::uint64_t packets_s2c = 0;
  std::uint64_t bytes_c2s = 0;
  std::uint64_t bytes_s2c = 0;

  // First captured payload bytes per direction (bounded), for DPI-style
  // classification and TLS certificate inspection.
  net::Bytes head_c2s;
  net::Bytes head_s2c;

  bool saw_syn = false;
  bool saw_fin_client = false;
  bool saw_fin_server = false;
  bool saw_rst = false;

  std::uint64_t total_packets() const noexcept {
    return packets_c2s + packets_s2c;
  }
  std::uint64_t total_bytes() const noexcept {
    return bytes_c2s + bytes_s2c;
  }
  bool finished() const noexcept {
    return saw_rst || (saw_fin_client && saw_fin_server);
  }
};

}  // namespace dnh::flow

template <>
struct std::hash<dnh::flow::FlowKey> {
  std::size_t operator()(const dnh::flow::FlowKey& k) const noexcept {
    std::uint64_t h = k.client_ip.value();
    h = h * 0x9e3779b97f4a7c15ULL ^ k.server_ip.value();
    h = h * 0x9e3779b97f4a7c15ULL ^
        ((std::uint64_t{k.client_port} << 17) | k.server_port);
    h = h * 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(k.transport);
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

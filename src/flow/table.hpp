// The Flow Sniffer's flow table: reconstructs layer-4 flows from decoded
// packets (paper Sec. 3.1, "Flow sniffer" block).
#pragma once

#include <functional>
#include <map>

#include "flow/flow.hpp"
#include "packet/decode.hpp"
#include "util/flat_hash.hpp"

namespace dnh::flow {

/// Configuration for flow reconstruction.
struct TableConfig {
  /// Max payload bytes retained per direction for DPI/cert inspection.
  std::size_t head_bytes = 4096;
  /// Flows idle longer than this are exported and dropped. Splitting is
  /// arrival-driven (a packet resuming an expired 5-tuple starts a new
  /// flow), so flow boundaries depend only on packet timestamps; the
  /// periodic sweep merely bounds memory for flows that never resume.
  util::Duration idle_timeout = util::Duration::minutes(5);
  /// Idle sweep cadence, counted in processed packets.
  std::uint64_t sweep_interval_packets = 8192;
  /// Pre-sized flow-table capacity (concurrent live flows expected per
  /// sniffer/shard): steady state then never rehashes. Growth past it is
  /// automatic, just amortized instead of free.
  std::size_t expected_flows = 4096;
};

/// Reconstructs flows from a packet stream and exports them on completion
/// (FIN/FIN or RST), idle timeout, or final flush.
class FlowTable {
 public:
  /// Export sink; receives each finished flow exactly once.
  using Exporter = std::function<void(FlowRecord&&)>;
  /// Observer invoked once per flow, on its first packet (before any
  /// payload): the tagger hook — "identify flows even before they begin".
  using FlowStartObserver = std::function<void(const FlowRecord&)>;

  explicit FlowTable(TableConfig config = {});

  void set_exporter(Exporter exporter) { exporter_ = std::move(exporter); }
  void set_flow_start_observer(FlowStartObserver obs) {
    on_flow_start_ = std::move(obs);
  }

  /// Consumes one decoded packet. Non-TCP/UDP packets must be filtered by
  /// the caller (decode_frame already drops them).
  void on_packet(const packet::DecodedPacket& pkt);

  /// Exports every live flow (end of trace).
  void flush();

  std::size_t live_flows() const noexcept { return flows_.size(); }
  std::uint64_t flows_seen() const noexcept { return flows_seen_; }
  std::uint64_t packets_processed() const noexcept { return packets_; }

 private:
  void export_flow(FlowRecord&& record);
  void sweep_idle(util::Timestamp now);

  /// Per-direction TCP head reassembly: real captures reorder and
  /// retransmit; blindly appending payloads would corrupt the head bytes
  /// the DPI/cert-inspection baselines parse. We track the next expected
  /// sequence number and park a bounded set of out-of-order segments.
  struct DirectionReasm {
    std::uint32_t next_seq = 0;
    bool synced = false;    ///< next_seq is initialized
    bool gave_up = false;   ///< capture gap (snaplen truncation): stop
    // dnh-lint: bounded(kMaxPending) at most 8 parked segments per
    // direction; past that the head gives up (table.cpp).
    std::map<std::uint32_t, net::Bytes> pending;
  };
  struct ReasmState {
    DirectionReasm dir[2];  ///< [0] = c2s, [1] = s2c
  };
  void append_head(FlowRecord& flow, bool c2s,
                   const packet::DecodedPacket& pkt);

  TableConfig config_;
  // Flat open-addressing tables (docs/performance.md "Flat-hash hot
  // path"): every packet probes flows_ once (twice on orientation miss),
  // so the lookup structure is the per-packet cost center. Export order
  // stays deterministic because flush()/sweep_idle() sort keys before
  // exporting — iteration order never reaches the output.
  // dnh-lint: bounded(sweep_idle) idle flows exported and erased on the
  // sweep cadence; reasm_ entries die with their flow.
  util::FlatHash<FlowKey, FlowRecord> flows_;
  // dnh-lint: bounded(sweep_idle)
  util::FlatHash<FlowKey, ReasmState> reasm_;
  Exporter exporter_;
  FlowStartObserver on_flow_start_;
  std::uint64_t flows_seen_ = 0;
  std::uint64_t packets_ = 0;
};

/// Orients a packet's addresses into a FlowKey plus direction.
/// `client_to_server` is true when the packet travels client->server.
struct OrientedKey {
  FlowKey key;
  bool client_to_server = true;
};

/// Orientation rules, in priority order: pure SYN marks the sender as the
/// client; otherwise the lower port number is taken as the server side
/// (ports below 1024 always win); ties fall back to address ordering.
OrientedKey orient(const packet::DecodedPacket& pkt);

}  // namespace dnh::flow

// Process-wide metrics registry: named counters, gauges, and log-linear
// histograms behind cheap handles, built so the capture hot path pays a
// single uncontended relaxed atomic increment per event.
//
// Design:
//  - Counter: each incrementing thread gets a private cache-line-sized
//    cell per counter (registered lazily on first touch). The hot path is
//    one thread_local vector index plus one relaxed fetch_add — no locks,
//    no sharing, no false sharing. A thread that exits flushes its cells
//    into the counter's `retired` sum, so totals survive worker churn;
//    readers sum retired + all live cells, giving a live (slightly
//    racy-by-design) view suitable for periodic exporters.
//  - Gauge: one relaxed atomic int64; set from whichever thread owns the
//    underlying state (or from a registered sampler for state that is
//    safe to read cross-thread, like SPSC ring cursors).
//  - Histogram: 256 log-linear buckets (4 linear sub-buckets per
//    power-of-two octave, full uint64 range) of shared relaxed atomics.
//    Histograms record span latencies and sampled depths — orders of
//    magnitude rarer than counter bumps — so striping is not worth the
//    memory.
//  - Registry: name -> metric, registration under a mutex (cold path
//    only; call sites cache handles). Samplers registered here run on the
//    snapshot thread just before each collection, for gauges derived from
//    concurrently-readable state.
//
// Naming scheme (see docs/observability.md for the full catalog):
// `dnh_<subsystem>_<what>[_total]{label=value,...}` — the label suffix is
// part of the registry key and is split back out by the Prometheus
// exporter.
//
// The registry is a leaked singleton: metric state is never destroyed, so
// handles and thread-exit flushes stay valid during process teardown.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace dnh::obs {

class Registry;

namespace detail {

struct CounterState;

/// The process-wide mutex serializing every cell-membership operation
/// (lazy registration, flush-on-thread-exit, CounterState teardown,
/// reader sums). Leaked so late TLS destructors can always lock it.
util::Mutex& cells_mu();

/// One thread's private slice of one counter. Cache-line sized so two
/// threads' cells never share a line.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
  /// Back-pointer for the flush-on-thread-exit path; nulled by
  /// ~CounterState when a registry dies before the thread does. Never
  /// touched on the hot path.
  CounterState* owner DNH_GUARDED_BY(cells_mu()) = nullptr;
};

struct CounterState {
  std::string name;
  std::size_t id = 0;  ///< dense registry-wide index (thread-local slot)
  /// Contributions flushed from exited threads.
  std::atomic<std::uint64_t> retired{0};
  /// Live threads' cells (owned by the TLS). Membership, flushes and
  /// reader sums all serialize on cells_mu(), so a registry and the
  /// threads feeding it can die in either order.
  std::vector<Cell*> cells DNH_GUARDED_BY(cells_mu());
  ~CounterState();              ///< orphans live cells
  std::uint64_t value() const DNH_EXCLUDES(cells_mu());
};

/// Sampler registrations, shared between a Registry and its outstanding
/// SamplerHandles. A shared_ptr control block (not a raw back-pointer)
/// so a handle that outlives its registry — a teardown ordering the
/// thread-safety annotation pass flagged — detaches safely instead of
/// dereferencing a dead Registry.
struct SamplerSet {
  util::Mutex mu;
  /// Held while a snapshot runs the sampler list; SamplerHandle::reset()
  /// acquires it so unregistration synchronizes with in-flight samplers.
  /// Acquired before (never while holding) `mu`.
  util::Mutex run_mu;
  std::uint64_t next_id DNH_GUARDED_BY(mu) = 1;
  std::map<std::uint64_t, std::function<void()>> fns DNH_GUARDED_BY(mu);
};

struct GaugeState {
  std::string name;
  std::atomic<std::int64_t> value{0};
};

struct HistogramState;

/// Slow path of Counter::add: allocates and registers this thread's cell.
Cell* register_cell(CounterState* state);
/// Next process-unique counter id (shared across Registry instances).
std::size_t next_counter_id();

}  // namespace detail

/// Cheap copyable handle; default-constructed handles are inert no-ops so
/// optional instrumentation never needs null checks at call sites.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n) const noexcept;
  void inc() const noexcept { add(1); }
  /// Live total (retired + every live thread's cell, relaxed loads).
  std::uint64_t value() const;
  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterState* state) noexcept : state_{state} {}
  detail::CounterState* state_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const noexcept {
    if (state_) state_->value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const noexcept {
    if (state_) state_->value.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return state_ ? state_->value.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeState* state) noexcept : state_{state} {}
  detail::GaugeState* state_ = nullptr;
};

class Histogram {
 public:
  /// Log-linear layout: 4 linear sub-buckets per power-of-two octave.
  /// Bucket i covers values in (bucket_upper(i-1), bucket_upper(i)];
  /// bucket 0 covers exactly {0}. 252 buckets span the whole uint64 range
  /// with <= 25% relative bucket width above 4.
  static constexpr std::size_t kSubBuckets = 4;
  static constexpr std::size_t kBuckets = 252;

  /// Which bucket `v` lands in. Monotone in v; covers all of uint64.
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int e = std::bit_width(v) - 1;  // floor(log2 v), >= 2
    const std::size_t sub =
        static_cast<std::size_t>((v >> (e - 2)) & (kSubBuckets - 1));
    return kSubBuckets + kSubBuckets * static_cast<std::size_t>(e - 2) + sub;
  }

  /// Largest value mapping to bucket `index` (inclusive upper bound).
  static constexpr std::uint64_t bucket_upper(std::size_t index) noexcept {
    if (index < kSubBuckets) return index;
    const std::size_t e = 2 + (index - kSubBuckets) / kSubBuckets;
    const std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
    // 2^e + (sub+1) * 2^(e-2) - 1; at e=63, sub=3 this is exactly
    // UINT64_MAX (2^63 + 2^63 - 1).
    return (std::uint64_t{1} << e) + ((sub + 1) << (e - 2)) - 1;
  }

  Histogram() = default;

  void observe(std::uint64_t v) const noexcept;
  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept;
  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramState* state) noexcept
      : state_{state} {}
  detail::HistogramState* state_ = nullptr;
};

namespace detail {
struct HistogramState {
  std::string name;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> buckets[Histogram::kBuckets]{};
};
}  // namespace detail

/// Read-only copy of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  struct Bucket {
    std::uint64_t upper = 0;  ///< inclusive upper bound of the bucket
    std::uint64_t count = 0;  ///< samples in this bucket (not cumulative)
  };
  std::vector<Bucket> buckets;  ///< non-empty buckets only, ascending

  double mean() const noexcept {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }
  /// Upper bound of the bucket holding quantile `q` in [0,1]; 0 if empty.
  double quantile(double q) const noexcept;
};

/// Read-only copy of every metric at one instant.
struct Snapshot {
  std::int64_t wall_unix_ms = 0;  ///< system clock when taken
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Registry {
 public:
  /// The process-wide registry (leaked: valid through static teardown).
  static Registry& global();

  Registry();
  /// Drops every registered sampler. Outstanding SamplerHandles stay
  /// valid (reset() on them becomes a no-op): the sampler set is shared
  /// state, so the registry and its handles can die in either order.
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates; the handle stays valid forever. Call sites should
  /// cache the handle, not re-resolve per event.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Unregisters its sampler on destruction; movable, not copyable.
  /// Holds the sampler set alive, NOT the registry: resetting (or
  /// dropping) a handle after its registry died is safe and a no-op.
  class SamplerHandle {
   public:
    SamplerHandle() = default;
    SamplerHandle(SamplerHandle&& o) noexcept { *this = std::move(o); }
    SamplerHandle& operator=(SamplerHandle&& o) noexcept;
    ~SamplerHandle() { reset(); }
    void reset();

   private:
    friend class Registry;
    std::shared_ptr<detail::SamplerSet> set_;
    std::uint64_t id_ = 0;
  };

  /// Registers `fn` to run just before every snapshot (on the snapshot
  /// taker's thread). The sampler must only touch state that is safe to
  /// read from a foreign thread (atomics) and should write through cached
  /// gauge/histogram handles, not re-resolve names.
  [[nodiscard]] SamplerHandle add_sampler(std::function<void()> fn);

  /// Runs the samplers, then collects every metric. Safe to call from any
  /// thread, concurrently with hot-path updates (values are relaxed
  /// reads: each metric internally consistent, cross-metric skew possible).
  Snapshot snapshot() DNH_EXCLUDES(mu_);

  /// Collects without running samplers (used by tests and the final
  /// flush, where owner threads have already published).
  Snapshot collect() const DNH_EXCLUDES(mu_);

  /// Zeroes every value (names and handles survive). Tests/benches only:
  /// concurrent writers make the zero point fuzzy.
  void reset() DNH_EXCLUDES(mu_);

 private:
  friend struct detail::CounterState;

  /// Guards the metric maps. Acquired after detail::SamplerSet::run_mu
  /// (snapshot) and before detail::cells_mu() (collect/reset via
  /// CounterState::value); never the reverse.
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<detail::CounterState>, std::less<>>
      counters_ DNH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<detail::GaugeState>, std::less<>>
      gauges_ DNH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<detail::HistogramState>, std::less<>>
      histograms_ DNH_GUARDED_BY(mu_);
  /// Shared with outstanding SamplerHandles; internally synchronized.
  std::shared_ptr<detail::SamplerSet> samplers_;
};

}  // namespace dnh::obs

#include "obs/traceio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"

namespace dnh::obs {

namespace {

constexpr std::size_t kFrameHeaderBytes = 12;  // magic + len + crc

void put_u32le(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v & 0xff));
  out.push_back(static_cast<unsigned char>((v >> 8) & 0xff));
  out.push_back(static_cast<unsigned char>((v >> 16) & 0xff));
  out.push_back(static_cast<unsigned char>((v >> 24) & 0xff));
}

void put_u64le(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64le(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// JSON string escaping for ring labels and names.
void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

bool full_write_fd(int fd, const void* data, std::size_t size) noexcept {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ::ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Decodes one ring body starting at `p` (after ring_count); appends to
/// `out`. Returns bytes consumed, or 0 on malformed input.
std::size_t decode_ring(const unsigned char* p, std::size_t avail,
                        std::vector<ThreadTrace>& out) {
  constexpr std::size_t kRingHeader = 4 + 4;  // ring_id + label_len
  if (avail < kRingHeader) return 0;
  ThreadTrace trace;
  trace.ring_id = get_u32le(p);
  const std::uint32_t label_len = get_u32le(p + 4);
  std::size_t off = kRingHeader;
  if (label_len > 256 || avail < off + label_len + 16) return 0;
  trace.label.assign(reinterpret_cast<const char*>(p + off), label_len);
  off += label_len;
  trace.total = get_u64le(p + off);
  off += 8;
  const std::uint64_t count = get_u64le(p + off);
  off += 8;
  if (count > (avail - off) / TraceRing::kEventBytes) return 0;
  trace.events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEvent ev;
    ev.ts_ns = get_u64le(p + off);
    ev.arg = get_u64le(p + off + 8);
    ev.seq = get_u64le(p + off + 16);
    const std::uint64_t packed = get_u64le(p + off + 24);
    ev.stage = TraceEvent::unpack_stage(packed);
    ev.kind = TraceEvent::unpack_kind(packed);
    ev.shard = TraceEvent::unpack_shard(packed);
    trace.events.push_back(ev);
    off += TraceRing::kEventBytes;
  }
  out.push_back(std::move(trace));
  return off;
}

}  // namespace

std::string to_chrome_trace(const std::vector<ThreadTrace>& threads) {
  // Chrome trace-event format, JSON-object flavor: Perfetto and
  // chrome://tracing both accept {"traceEvents": [...]}. Timestamps are
  // microseconds (fractional keeps the ns precision).
  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const ThreadTrace& t : threads) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"",
                  t.ring_id);
    out += buf;
    append_json_escaped(out, t.label);
    out += "\"}}";
    for (const TraceEvent& ev : t.events) {
      out += ",{\"name\":\"";
      out += trace_kind_name(ev.kind);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%llu.%03u,"
                    "\"pid\":1,\"tid\":%u,\"args\":{\"stage\":\"",
                    static_cast<unsigned long long>(ev.ts_ns / 1000),
                    static_cast<unsigned>(ev.ts_ns % 1000), t.ring_id);
      out += buf;
      out += trace_stage_name(ev.stage);
      out += "\"";
      if (ev.seq != kNoSeq) {
        std::snprintf(buf, sizeof(buf), ",\"seq\":%llu",
                      static_cast<unsigned long long>(ev.seq));
        out += buf;
      }
      if (ev.shard != kNoShard) {
        std::snprintf(buf, sizeof(buf), ",\"shard\":%u", ev.shard);
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), ",\"arg\":%llu}}",
                    static_cast<unsigned long long>(ev.arg));
      out += buf;
    }
  }
  out += "]}";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<ThreadTrace>& threads) {
  std::ofstream file{path, std::ios::trunc};
  if (!file) return false;
  file << to_chrome_trace(threads) << '\n';
  file.flush();
  return static_cast<bool>(file);
}

std::vector<unsigned char> encode_trace_frame(
    const std::vector<ThreadTrace>& threads) {
  std::vector<unsigned char> payload;
  put_u32le(payload, kTraceFormatVersion);
  put_u32le(payload, static_cast<std::uint32_t>(threads.size()));
  for (const ThreadTrace& t : threads) {
    put_u32le(payload, t.ring_id);
    put_u32le(payload, static_cast<std::uint32_t>(t.label.size()));
    payload.insert(payload.end(), t.label.begin(), t.label.end());
    put_u64le(payload, t.total);
    put_u64le(payload, static_cast<std::uint64_t>(t.events.size()));
    for (const TraceEvent& ev : t.events) {
      put_u64le(payload, ev.ts_ns);
      put_u64le(payload, ev.arg);
      put_u64le(payload, ev.seq);
      put_u64le(payload, TraceEvent::pack(ev.stage, ev.kind, ev.shard));
    }
  }
  std::vector<unsigned char> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  for (const char c : kTraceMagic)
    frame.push_back(static_cast<unsigned char>(c));
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, util::crc32_ieee(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool write_binary_dump(const std::string& path,
                       const std::vector<ThreadTrace>& threads) {
  const std::vector<unsigned char> frame = encode_trace_frame(threads);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool wrote = full_write_fd(fd, frame.data(), frame.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return false;
  }
  // rename is atomic: a reader (or the next boot after kill -9) sees
  // either the previous complete dump or this one, never a torn mix.
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

std::optional<std::vector<ThreadTrace>> read_binary_dump(
    const std::string& path, std::string* error) {
  std::ifstream file{path, std::ios::binary};
  if (!file) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>{file},
                                   std::istreambuf_iterator<char>{}};
  std::vector<ThreadTrace> out;
  std::size_t off = 0;
  std::string damage;
  while (off + kFrameHeaderBytes <= bytes.size()) {
    if (std::memcmp(bytes.data() + off, kTraceMagic, 4) != 0) {
      damage = "bad frame magic at offset " + std::to_string(off);
      break;
    }
    const std::uint32_t len = get_u32le(bytes.data() + off + 4);
    const std::uint32_t crc = get_u32le(bytes.data() + off + 8);
    if (off + kFrameHeaderBytes + len > bytes.size()) {
      damage = "torn frame at offset " + std::to_string(off);
      break;
    }
    const unsigned char* payload = bytes.data() + off + kFrameHeaderBytes;
    if (util::crc32_ieee(payload, len) != crc) {
      damage = "frame CRC mismatch at offset " + std::to_string(off);
      off += kFrameHeaderBytes + len;  // skip, later frames may be intact
      continue;
    }
    if (len < 8 || get_u32le(payload) != kTraceFormatVersion) {
      damage = "unsupported trace format version";
      off += kFrameHeaderBytes + len;
      continue;
    }
    const std::uint32_t ring_count = get_u32le(payload + 4);
    std::size_t body = 8;
    bool ok = true;
    for (std::uint32_t i = 0; i < ring_count && ok; ++i) {
      const std::size_t used = decode_ring(payload + body, len - body, out);
      if (used == 0) {
        damage = "malformed ring body in frame at offset " +
                 std::to_string(off);
        ok = false;
        break;
      }
      body += used;
    }
    off += kFrameHeaderBytes + len;
  }
  if (out.empty()) {
    if (error)
      *error = damage.empty() ? "no trace frames in " + path : damage;
    return std::nullopt;
  }
  if (error) *error = damage;
  return out;
}

PeriodicTraceDump::PeriodicTraceDump(FlightRecorder& recorder,
                                     std::string path,
                                     util::Duration interval)
    : recorder_{recorder}, path_{std::move(path)}, interval_{interval} {}

PeriodicTraceDump::~PeriodicTraceDump() { stop(); }

void PeriodicTraceDump::start() {
  {
    util::MutexLock lock{mu_};
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  // First dump happens synchronously: a run shorter than the interval
  // (or killed right after start) still leaves a recoverable file.
  if (write_binary_dump(path_, recorder_.snapshot()))
    dumps_.fetch_add(1, std::memory_order_relaxed);
  thread_ = std::thread{[this] { loop(); }};
}

void PeriodicTraceDump::stop() {
  {
    util::MutexLock lock{mu_};
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    util::MutexLock lock{mu_};
    started_ = false;
  }
  if (write_binary_dump(path_, recorder_.snapshot()))
    dumps_.fetch_add(1, std::memory_order_relaxed);
}

void PeriodicTraceDump::loop() {
  const auto interval = std::chrono::microseconds{
      interval_.total_micros() > 0 ? interval_.total_micros() : 100000};
  while (true) {
    {
      util::MutexLock lock{mu_};
      if (stopping_) return;
      cv_.wait_for(lock, interval);
      if (stopping_) return;
    }
    if (write_binary_dump(path_, recorder_.snapshot()))
      dumps_.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

// ---- fatal-signal dump ---------------------------------------------------
//
// Everything the handler touches lives in static storage and is written
// with async-signal-safe calls only: open/write/fsync/close, atomic
// loads, memcpy into a static buffer, and the crc32 table lookups.

char g_fatal_dump_path[512] = {0};
std::atomic<bool> g_fatal_dump_armed{false};
std::atomic<bool> g_fatal_dump_taken{false};

/// Scratch for one per-ring frame. Sized for the default ring capacity;
/// larger (test-configured) rings are skipped by the signal path.
constexpr std::size_t kSignalRingHeaderBytes = 4 + 4 + 4 + 4 + 32 + 8 + 8;
constexpr std::size_t kSignalBufBytes =
    kFrameHeaderBytes + kSignalRingHeaderBytes +
    FlightRecorder::kDefaultRingCapacity * TraceRing::kEventBytes;
unsigned char g_signal_buf[kSignalBufBytes];
std::atomic<bool> g_signal_buf_busy{false};

std::size_t sput_u32le(unsigned char* p, std::uint32_t v) noexcept {
  p[0] = static_cast<unsigned char>(v & 0xff);
  p[1] = static_cast<unsigned char>((v >> 8) & 0xff);
  p[2] = static_cast<unsigned char>((v >> 16) & 0xff);
  p[3] = static_cast<unsigned char>((v >> 24) & 0xff);
  return 4;
}

std::size_t sput_u64le(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  return 8;
}

// dnh-analyze: signal-safe
extern "C" void fatal_signal_handler(int signo) {
  // One-shot: the first fatal signal dumps, nested faults (including a
  // fault inside the dump itself) fall straight through to the default
  // disposition re-raised below.
  if (!g_fatal_dump_taken.exchange(true)) {
    // Quiesce writers so the copied rings stop moving. Racing threads
    // that are mid-record at most mix one event's words — each word is
    // atomic, and the CRC is computed after the copy, so the dump still
    // validates.
    FlightRecorder::global().set_enabled(false);
    const int fd = ::open(g_fatal_dump_path,
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      signal_safe_dump(fd, FlightRecorder::global());
      ::fsync(fd);
      ::close(fd);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

// dnh-analyze: signal-safe
bool signal_safe_dump(int fd, const FlightRecorder& recorder) noexcept {
  if (g_signal_buf_busy.exchange(true)) return false;
  FlightRecorder::RawRing rings[FlightRecorder::kMaxRings];
  const std::size_t n = recorder.raw_rings(rings, FlightRecorder::kMaxRings);
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    const TraceRing& ring = *rings[i].ring;
    const std::size_t cap = ring.capacity();
    if (cap > FlightRecorder::kDefaultRingCapacity) continue;
    const std::uint64_t head = ring.total();
    const std::uint64_t first = head > cap ? head - cap : 0;
    const std::uint64_t count = head - first;
    std::size_t label_len = 0;
    while (label_len < 31 && rings[i].label[label_len] != '\0') ++label_len;

    unsigned char* payload = g_signal_buf + kFrameHeaderBytes;
    std::size_t off = 0;
    off += sput_u32le(payload + off, kTraceFormatVersion);
    off += sput_u32le(payload + off, 1);  // ring_count
    off += sput_u32le(payload + off, rings[i].ring_id);
    off += sput_u32le(payload + off, static_cast<std::uint32_t>(label_len));
    std::memcpy(payload + off, rings[i].label, label_len);
    off += label_len;
    off += sput_u64le(payload + off, head);
    off += sput_u64le(payload + off, count);
    const std::atomic<std::uint64_t>* words = ring.words();
    const std::size_t mask = cap - 1;
    for (std::uint64_t idx = first; idx < head; ++idx) {
      const std::atomic<std::uint64_t>* slot =
          &words[(idx & mask) * TraceRing::kWordsPerEvent];
      for (std::size_t w = 0; w < TraceRing::kWordsPerEvent; ++w)
        off += sput_u64le(payload + off,
                          slot[w].load(std::memory_order_relaxed));
    }
    unsigned char* frame = g_signal_buf;
    std::memcpy(frame, kTraceMagic, 4);
    sput_u32le(frame + 4, static_cast<std::uint32_t>(off));
    sput_u32le(frame + 8, util::crc32_ieee(payload, off));
    if (!full_write_fd(fd, frame, kFrameHeaderBytes + off)) {
      ok = false;
      break;
    }
  }
  g_signal_buf_busy.store(false);
  return ok;
}

void install_fatal_signal_dump(const std::string& path) {
  const std::size_t n =
      std::min(path.size(), sizeof(g_fatal_dump_path) - 1);
  std::memcpy(g_fatal_dump_path, path.data(), n);
  g_fatal_dump_path[n] = '\0';
  // Force the recorder singleton into existence before any handler can
  // fire: fatal_signal_handler must only ever see global() as a plain
  // pointer read (its lazy `new` is not async-signal-safe).
  FlightRecorder::global();
  if (g_fatal_dump_armed.exchange(true)) return;  // handlers already set
  struct sigaction action {};
  action.sa_handler = fatal_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
  for (const int signo : signals) ::sigaction(signo, &action, nullptr);
}

}  // namespace dnh::obs

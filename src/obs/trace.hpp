// Scoped trace spans: RAII timers that feed per-stage latency histograms.
//
// Two flavors:
//  - SpanTimer{hist}            — times every pass through the scope.
//    For coarse stages (a window merge, a whole-file read) where two
//    clock reads are noise.
//  - SpanTimer{hist, gate}      — times 1-in-N passes (systematic
//    sampling). For per-frame stages (decode, dispatch, shard sniff)
//    where clocking every event would cost more than the event itself;
//    the untimed passes pay one increment-and-mask on a caller-owned
//    gate. Sampling is unbiased for the latency DISTRIBUTION; the
//    histogram's count is the number of samples, not of events.
//
// Latencies are recorded in nanoseconds (steady clock). Histogram names
// follow `dnh_stage_<stage>_ns`.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace dnh::obs {

/// 1-in-N admission gate. Owned by the timing call site (one per thread
/// of execution: a member of the single-threaded owner, or a local in the
/// thread's loop) so admission needs no synchronization.
struct SampleGate {
  /// Admits one pass in `every` (rounded up to a power of two, min 1).
  explicit constexpr SampleGate(std::uint32_t every) noexcept {
    std::uint32_t pow2 = 1;
    while (pow2 < every && pow2 < (1u << 30)) pow2 <<= 1;
    mask = pow2 - 1;
  }

  bool admit() noexcept { return (tick++ & mask) == 0; }

  std::uint32_t mask = 0;
  std::uint32_t tick = 0;
};

class SpanTimer {
 public:
  /// Times this scope unconditionally.
  explicit SpanTimer(Histogram hist) noexcept
      : hist_{hist}, active_{hist.valid()} {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  /// Times this scope only when the gate admits it.
  SpanTimer(Histogram hist, SampleGate& gate) noexcept
      : hist_{hist}, active_{hist.valid() && gate.admit()} {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() { stop(); }

  /// Ends the span early (idempotent); the destructor becomes a no-op.
  void stop() noexcept {
    if (!active_) return;
    active_ = false;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count();
    hist_.observe(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

 private:
  Histogram hist_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dnh::obs

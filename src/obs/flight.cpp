#include "obs/flight.hpp"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>

namespace dnh::obs {

std::string_view trace_stage_name(TraceStage stage) noexcept {
  switch (stage) {
    case TraceStage::kCli:
      return "cli";
    case TraceStage::kSource:
      return "source";
    case TraceStage::kDispatch:
      return "dispatch";
    case TraceStage::kShard:
      return "shard";
    case TraceStage::kSpill:
      return "spill";
    case TraceStage::kMerge:
      return "merge";
    case TraceStage::kExport:
      return "export";
    case TraceStage::kWatchdog:
      return "watchdog";
  }
  return "unknown";
}

std::string_view trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kThreadStart:
      return "thread-start";
    case TraceKind::kWindowDispatched:
      return "window-dispatched";
    case TraceKind::kWindowSealed:
      return "window-sealed";
    case TraceKind::kWindowSpilled:
      return "window-spilled";
    case TraceKind::kWindowJournaled:
      return "window-journaled";
    case TraceKind::kMergeIngested:
      return "merge-ingested";
    case TraceKind::kWindowEmitted:
      return "window-emitted";
    case TraceKind::kWindowRecovered:
      return "window-recovered";
    case TraceKind::kFrameBatch:
      return "frame-batch";
    case TraceKind::kSniffProgress:
      return "sniff-progress";
    case TraceKind::kBackpressureWait:
      return "backpressure-wait";
    case TraceKind::kSourceOpen:
      return "source-open";
    case TraceKind::kSourceDone:
      return "source-done";
    case TraceKind::kExportDatagram:
      return "export-datagram";
    case TraceKind::kDrainRequested:
      return "drain-requested";
    case TraceKind::kStallDeclared:
      return "stall-declared";
    case TraceKind::kStallInjected:
      return "stall-injected";
    case TraceKind::kPipelineFinish:
      return "pipeline-finish";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity);
  mask_ = cap - 1;
  words_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      cap * kWordsPerEvent);
  for (std::size_t i = 0; i < cap * kWordsPerEvent; ++i)
    words_[i].store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::size_t cap = capacity();
  const std::uint64_t h1 = head_.load(std::memory_order_acquire);
  const std::uint64_t first = h1 > cap ? h1 - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(h1 - first));
  std::vector<std::uint64_t> indices;
  indices.reserve(static_cast<std::size_t>(h1 - first));
  for (std::uint64_t idx = first; idx < h1; ++idx) {
    const std::atomic<std::uint64_t>* slot =
        &words_[(idx & mask_) * kWordsPerEvent];
    TraceEvent ev;
    ev.ts_ns = slot[0].load(std::memory_order_relaxed);
    ev.arg = slot[1].load(std::memory_order_relaxed);
    ev.seq = slot[2].load(std::memory_order_relaxed);
    const std::uint64_t packed = slot[3].load(std::memory_order_relaxed);
    ev.stage = TraceEvent::unpack_stage(packed);
    ev.kind = TraceEvent::unpack_kind(packed);
    ev.shard = TraceEvent::unpack_shard(packed);
    out.push_back(ev);
    indices.push_back(idx);
  }
  // Lap detection: the writer may have advanced while we read. An event
  // at index i is only trustworthy if the writer has not *begun* reusing
  // its slot, i.e. has not started storing index i + capacity. record()
  // bumps begin_ before its slot stores (release fence between them), so
  // if any word we read above came from a newer event, the acquire fence
  // here guarantees we also see begin_ > i + capacity and drop the slot.
  // A quiescent full ring has begin_ == head_ and keeps all `cap` events.
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t b2 = begin_.load(std::memory_order_relaxed);
  std::size_t keep_from = 0;
  while (keep_from < indices.size() && b2 > indices[keep_from] + cap)
    ++keep_from;
  if (keep_from > 0)
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(keep_from));
  return out;
}

FlightRecorder::FlightRecorder(std::size_t ring_capacity)
    : ring_capacity_{round_up_pow2(ring_capacity)},
      epoch_{std::chrono::steady_clock::now()},
      entries_{std::make_unique<std::atomic<RingEntry*>[]>(kMaxRings)} {
  for (std::size_t i = 0; i < kMaxRings; ++i)
    entries_[i].store(nullptr, std::memory_order_relaxed);
}

// dnh-analyze: allow(signal-safety, the lazy `new` runs once at startup
// -- install_fatal_signal_dump() touches global() before arming handlers,
// so by the time a fatal signal can reach this path the static is a
// plain pointer read)
// dnh-analyze: allow(alloc, one-time lazy init -- the first trace_event
// call constructs the recorder; every later hot-path call is a plain
// pointer read)
FlightRecorder& FlightRecorder::global() {
  // Leaked: rings must outlive every recording thread, including threads
  // still running during static destruction.
  static FlightRecorder* recorder = new FlightRecorder{};
  return *recorder;
}

std::uint64_t FlightRecorder::now_ns() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

namespace {

/// Per-thread registration cache. Keyed by recorder so tests can run
/// private FlightRecorder instances next to the global one.
struct RingCache {
  const FlightRecorder* owner = nullptr;
  void* entry = nullptr;
};
thread_local RingCache t_ring_cache;

}  // namespace

FlightRecorder::RingEntry* FlightRecorder::entry_for_this_thread() {
  if (t_ring_cache.owner == this)
    return static_cast<RingEntry*>(t_ring_cache.entry);
  RingEntry* entry = nullptr;
  {
    util::MutexLock lock{mu_};
    const std::size_t n = count_.load(std::memory_order_relaxed);
    if (n >= kMaxRings) return nullptr;
    entry = new RingEntry{ring_capacity_};  // leaked with the recorder
    entry->ring_id = static_cast<std::uint32_t>(n);
    // Publish the slot before the count: a lock-free reader that sees
    // count >= n+1 must see a valid pointer in slot n.
    entries_[n].store(entry, std::memory_order_release);
    count_.store(n + 1, std::memory_order_release);
  }
  t_ring_cache.owner = this;
  t_ring_cache.entry = entry;
  return entry;
}

void FlightRecorder::record(TraceStage stage, TraceKind kind,
                            std::uint64_t seq, unsigned shard,
                            std::uint64_t arg) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  RingEntry* entry = entry_for_this_thread();
  if (entry == nullptr) return;
  entry->ring.record(now_ns(), stage, kind, seq, shard, arg);
}

void FlightRecorder::set_thread_label(std::string_view label) {
  RingEntry* entry = entry_for_this_thread();
  if (entry == nullptr) return;
  // Owner-thread only (the entry is this thread's); byte-wise relaxed
  // stores so concurrent dump readers copying the label race-freely see
  // either the old prefix or the new one, never a torn read.
  constexpr std::size_t kLabelCap =
      sizeof(entry->label) / sizeof(entry->label[0]);
  const std::size_t n = std::min(label.size(), kLabelCap - 1);
  for (std::size_t i = 0; i < n; ++i)
    entry->label[i].store(label[i], std::memory_order_relaxed);
  entry->label[n].store('\0', std::memory_order_relaxed);
}

std::size_t FlightRecorder::raw_rings(RawRing* out,
                                      std::size_t max) const noexcept {
  const std::size_t n =
      std::min(count_.load(std::memory_order_acquire), kMaxRings);
  std::size_t filled = 0;
  for (std::size_t i = 0; i < n && filled < max; ++i) {
    const RingEntry* entry = entries_[i].load(std::memory_order_acquire);
    if (entry == nullptr) continue;
    out[filled].ring = &entry->ring;
    std::size_t li = 0;
    for (; li + 1 < sizeof(out[filled].label); ++li) {
      const char c = entry->label[li].load(std::memory_order_relaxed);
      if (c == '\0') break;
      out[filled].label[li] = c;
    }
    out[filled].label[li] = '\0';
    out[filled].ring_id = entry->ring_id;
    ++filled;
  }
  return filled;
}

std::vector<ThreadTrace> FlightRecorder::snapshot() const {
  RawRing raw[kMaxRings];
  const std::size_t n = raw_rings(raw, kMaxRings);
  std::vector<ThreadTrace> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ThreadTrace trace;
    trace.ring_id = raw[i].ring_id;
    trace.label = raw[i].label;  // NUL-terminated fixed buffer
    if (trace.label.empty())
      trace.label = "thread-" + std::to_string(raw[i].ring_id);
    trace.total = raw[i].ring->total();
    trace.events = raw[i].ring->snapshot();
    out.push_back(std::move(trace));
  }
  return out;
}

std::string FlightRecorder::excerpt(std::size_t per_stage) const {
  struct Tagged {
    TraceEvent ev;
    const std::string* label;
  };
  const std::vector<ThreadTrace> threads = snapshot();
  std::vector<std::vector<Tagged>> by_stage(kTraceStageCount);
  for (const ThreadTrace& t : threads)
    for (const TraceEvent& ev : t.events) {
      const auto s = static_cast<std::size_t>(ev.stage);
      if (s < kTraceStageCount) by_stage[s].push_back({ev, &t.label});
    }
  std::ostringstream out;
  out << "trace excerpt (last " << per_stage << " events per stage):";
  bool any = false;
  for (std::size_t s = 0; s < kTraceStageCount; ++s) {
    auto& events = by_stage[s];
    if (events.empty()) continue;
    any = true;
    std::sort(events.begin(), events.end(),
              [](const Tagged& a, const Tagged& b) {
                return a.ev.ts_ns < b.ev.ts_ns;
              });
    const std::size_t first =
        events.size() > per_stage ? events.size() - per_stage : 0;
    out << "\n  [" << trace_stage_name(static_cast<TraceStage>(s)) << "]";
    for (std::size_t i = first; i < events.size(); ++i) {
      const TraceEvent& ev = events[i].ev;
      out << "\n    +" << ev.ts_ns / 1000000 << "." << std::setw(3)
          << std::setfill('0') << (ev.ts_ns / 1000) % 1000 << std::setfill(' ')
          << "ms " << trace_kind_name(ev.kind);
      if (ev.seq != kNoSeq) out << " seq=" << ev.seq;
      if (ev.shard != kNoShard) out << " shard=" << ev.shard;
      if (ev.arg != 0) out << " arg=" << ev.arg;
      out << " (" << *events[i].label << ")";
    }
  }
  if (!any) out << " <no events recorded>";
  return std::move(out).str();
}

}  // namespace dnh::obs

// Flight-recorder dump formats (docs/observability.md, "Flight recorder
// & tracing"):
//
//  - Chrome trace-event JSON (loads in Perfetto / chrome://tracing):
//    what `dnhunter --trace-out` writes at exit and what `dnhunter
//    trace-cat` renders binary dumps into.
//  - CRC-framed binary ("DNHT"): the crash-surviving format written next
//    to --spill-dir. Framing mirrors the spill segments (magic | u32 len
//    | u32 crc32 | payload, little-endian), so the same torn-write and
//    bit-rot detection applies. A file holds one or more frames; the
//    normal writer emits a single frame with every ring, the
//    fatal-signal writer emits one frame per ring so it never needs an
//    allocation.
//
// Plus the two crash-forensics drivers: PeriodicTraceDump (tmp+rename
// rewrites that survive `kill -9`) and the fatal-signal hook
// (async-signal-safe dump on SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL).
#pragma once

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/time.hpp"

namespace dnh::obs {

/// Binary dump magic ("DNHT" = DN-Hunter Trace).
inline constexpr char kTraceMagic[4] = {'D', 'N', 'H', 'T'};
/// Binary payload format version.
inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Renders a recorder snapshot as Chrome trace-event JSON. Each ring
/// becomes one Perfetto thread track (with a thread_name metadata
/// record); each event becomes a thread-scoped instant event carrying
/// stage/kind/seq/shard/arg args.
std::string to_chrome_trace(const std::vector<ThreadTrace>& threads);

/// Writes to_chrome_trace() output to `path`. Returns false on I/O error.
bool write_chrome_trace(const std::string& path,
                        const std::vector<ThreadTrace>& threads);

/// Serializes a snapshot into one CRC-framed binary frame.
std::vector<unsigned char> encode_trace_frame(
    const std::vector<ThreadTrace>& threads);

/// Writes a binary dump atomically: serialize, write `path`.tmp, fsync,
/// rename over `path`. A reader (or a crash) never observes a partial
/// file — the previous complete dump survives until the rename.
bool write_binary_dump(const std::string& path,
                       const std::vector<ThreadTrace>& threads);

/// Reads every intact frame of a binary dump. Returns nullopt when the
/// file is missing, carries no magic, or contains no intact frame; a
/// trailing torn/corrupt frame degrades (intact prefix is returned and
/// `error` notes the damage).
std::optional<std::vector<ThreadTrace>> read_binary_dump(
    const std::string& path, std::string* error = nullptr);

/// Background thread rewriting `path` from the recorder every
/// `interval`, via the atomic tmp+rename protocol, so the last completed
/// dump survives `kill -9`. Mirrors JsonlExporter's lifecycle: start()
/// writes an immediate first dump (a run shorter than the interval still
/// leaves forensics), stop() writes the final one.
class PeriodicTraceDump {
 public:
  PeriodicTraceDump(FlightRecorder& recorder, std::string path,
                    util::Duration interval);
  ~PeriodicTraceDump();

  void start();
  void stop();

  /// Completed dump rewrites so far.
  std::uint64_t dumps() const noexcept {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  FlightRecorder& recorder_;
  const std::string path_;
  const util::Duration interval_;
  std::atomic<std::uint64_t> dumps_{0};

  util::Mutex mu_;
  util::CondVar cv_;
  bool stopping_ DNH_GUARDED_BY(mu_) = false;
  bool started_ DNH_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

/// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
/// SIGILL) that dump the global recorder's rings to `path` using only
/// async-signal-safe calls, then re-raise the signal so the default
/// disposition (core dump / termination) still happens. `path` is copied
/// into static storage; later calls replace it. One-shot per process:
/// the first fatal signal wins, nested faults are ignored.
void install_fatal_signal_dump(const std::string& path);

/// The handler body, exposed for tests: dumps the recorder's rings to an
/// already-open file descriptor using write(2) only. Returns false if
/// any write failed. Async-signal-safe for rings with capacity up to
/// FlightRecorder::kDefaultRingCapacity (larger rings are skipped).
bool signal_safe_dump(int fd, const FlightRecorder& recorder) noexcept;

}  // namespace dnh::obs

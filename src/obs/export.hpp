// Exporters for the metrics registry:
//  - to_json_line: one self-contained JSON object per snapshot, for the
//    `--metrics-out FILE` JSON-lines stream a monitoring agent tails.
//  - to_prometheus: the Prometheus text exposition format, for the
//    one-shot `--metrics-prom FILE` dump (and scrape endpoints later).
//  - human_summary: the `dnhunter stats` terminal rendering — counters,
//    gauges, and a per-stage latency/share breakdown.
//  - JsonlExporter: a background thread that appends a snapshot line
//    every interval, plus one final line at stop(), fflushing each line
//    so a killed run loses at most the current interval.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace dnh::obs {

/// One JSON object (no trailing newline):
/// {"ts_ms":...,"counters":{...},"gauges":{...},
///  "histograms":{"name":{"count":C,"sum":S,"buckets":[[upper,count],...]}}}
std::string to_json_line(const Snapshot& snap);

/// Prometheus text format. Each family gets `# HELP` and `# TYPE`
/// headers; internal label syntax `name{k=v,...}` is rewritten to quoted
/// Prometheus labels (values escaped per the exposition spec: backslash,
/// quote, newline); histograms expand into cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
std::string to_prometheus(const Snapshot& snap);

/// Terminal summary: per-stage latency table (count, p50/p90/p99, total,
/// share of instrumented time) followed by non-zero counters and gauges.
std::string human_summary(const Snapshot& snap);

/// Formats a nanosecond latency compactly ("870ns", "12.4us", "1.03s").
std::string format_ns(double ns);

class JsonlExporter {
 public:
  struct Options {
    std::string path;
    /// Snapshot cadence; clamped to >= 1ms.
    util::Duration interval = util::Duration::seconds(1.0);
  };

  JsonlExporter(Registry& registry, Options options);
  ~JsonlExporter();  ///< calls stop()

  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  /// Opens the file (truncating) and starts the snapshot thread; writes
  /// an initial line immediately. False if the file cannot be opened.
  bool start();

  /// Writes one final snapshot line, joins the thread, closes the file.
  /// Idempotent.
  void stop();

  std::uint64_t lines_written() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dnh::obs

// Per-stage heartbeat counters: the liveness signal the pipeline watchdog
// reads to tell "making progress" from "wedged".
//
// Each pipeline stage (dispatcher, every shard worker, the merge thread)
// gets one cache-line-isolated relaxed atomic it bumps whenever it does a
// unit of work — consumes a batch, seals a window, merges one. The
// watchdog polls all counters from its own thread; stalls are detected by
// group quiescence (no counter advanced while work was pending), never by
// any single stage's rate, so a shard that is legitimately idle because
// the hash spread it no frames can never trip a false positive.
//
// Stages are registered before the watched threads start; after that the
// board is structurally immutable and beat()/count() are wait-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dnh::obs {

class HeartbeatBoard {
 public:
  using StageId = std::size_t;

  /// Registers a stage and returns its id. NOT thread-safe: call only
  /// during pipeline setup, before any beat()/count() from other threads.
  StageId add_stage(std::string name) {
    cells_.push_back(std::make_unique<Cell>());
    names_.push_back(std::move(name));
    return cells_.size() - 1;
  }

  /// One unit of progress. Relaxed: the watchdog only needs eventual
  /// visibility, and a beat carries no payload to order against.
  void beat(StageId id) const noexcept {
    cells_[id]->beats.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count(StageId id) const noexcept {
    return cells_[id]->beats.load(std::memory_order_relaxed);
  }

  std::size_t stages() const noexcept { return cells_.size(); }
  const std::string& name(StageId id) const noexcept { return names_[id]; }

 private:
  /// Cache-line sized so two stages' beats never share a line; held by
  /// pointer so registration never moves a live atomic.
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> beats{0};
  };
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<std::string> names_;
};

}  // namespace dnh::obs

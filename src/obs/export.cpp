#include "obs/export.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace dnh::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(v));
  out += buffer;
}

void append_i64(std::string& out, std::int64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(v));
  out += buffer;
}

/// Splits the internal `base{k=v,...}` name syntax. Returns the base;
/// `labels` gets the raw inside of the braces ("" when unlabeled).
std::string split_labels(const std::string& name, std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    labels.clear();
    return name;
  }
  labels = name.substr(brace + 1, name.size() - brace - 2);
  return name.substr(0, brace);
}

/// Exposition-format escaping. Label values escape backslash, double
/// quote, and line feed; HELP text escapes backslash and line feed only
/// (quotes are legal there) — per the Prometheus text-format spec.
void append_escaped(std::string& out, std::string_view text,
                    bool escape_quotes) {
  for (const char c : text) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '\n')
      out += "\\n";
    else if (c == '"' && escape_quotes)
      out += "\\\"";
    else
      out += c;
  }
}

/// `k=v,k2=v2` -> `k="v",k2="v2"`, escaping each value.
std::string quote_labels(const std::string& labels) {
  std::string out;
  for (const auto pair : util::split(labels, ',')) {
    const auto eq = pair.find('=');
    if (!out.empty()) out += ',';
    if (eq == std::string_view::npos) {
      out += pair;
      continue;
    }
    out += pair.substr(0, eq);
    out += "=\"";
    append_escaped(out, pair.substr(eq + 1), /*escape_quotes=*/true);
    out += '"';
  }
  return out;
}

/// HELP text per metric family. Kept next to the exporter (not on each
/// metric handle) so the hot path never carries strings; unknown names
/// get a derived fallback, so every family still exposes a HELP line.
std::string_view help_for(const std::string& base) {
  static constexpr std::pair<std::string_view, std::string_view> kHelp[] = {
      {"dnh_decode_errors_total", "Frames the packet decoder rejected."},
      {"dnh_dns_log_evictions_total",
       "DNS log entries evicted by the retention cap."},
      {"dnh_dns_log_size", "DNS events currently retained in the log."},
      {"dnh_dns_parse_errors_total", "Malformed DNS messages skipped."},
      {"dnh_dns_queries_total", "DNS query messages seen."},
      {"dnh_dns_responses_total", "DNS response messages parsed."},
      {"dnh_dns_tcp_messages_total",
       "DNS messages reassembled from TCP streams."},
      {"dnh_domain_table_bytes", "Bytes held by the FQDN intern arena."},
      {"dnh_domain_table_size", "Distinct FQDNs interned."},
      {"dnh_flow_table_live", "Flows currently tracked."},
      {"dnh_flowexport_datagrams_total", "Flow-export datagrams decoded."},
      {"dnh_flowexport_parse_errors_total",
       "Flow-export datagrams that failed to parse, by kind."},
      {"dnh_flowexport_records_ingested_total",
       "Flow-export records dispatched into the pipeline."},
      {"dnh_flowexport_records_total",
       "Flow records decoded from export datagrams, by protocol."},
      {"dnh_flowexport_template_cache_size",
       "IPFIX templates currently cached."},
      {"dnh_flowexport_templates_total", "IPFIX template records seen."},
      {"dnh_flows_exported_total", "Flows expired into the flow database."},
      {"dnh_flows_tagged_late_total",
       "Flows tagged after their first data packet."},
      {"dnh_flows_tagged_start_total",
       "Flows tagged at their first data packet."},
      {"dnh_frames_total", "Frames ingested by the sniffer."},
      {"dnh_merge_inbox_depth", "Sealed windows queued at the merge stage."},
      {"dnh_pcap_bytes_skipped_total",
       "Capture bytes lost to corrupt regions (resync mode)."},
      {"dnh_pcap_bytes_total", "Capture payload bytes read."},
      {"dnh_pcap_frames_total", "Capture records read."},
      {"dnh_pcap_resyncs_total",
       "Scan-forward recoveries over damaged capture regions."},
      {"dnh_pcap_truncated_tails_total",
       "Captures whose final record was cut short."},
      {"dnh_pending_tags", "DNS-tagged endpoints awaiting their flow."},
      {"dnh_pipeline_blocked_pushes_total",
       "Dispatcher pushes that waited on a full shard ring."},
      {"dnh_pipeline_frames_dispatched_total",
       "Frames fanned out to shard workers."},
      {"dnh_pipeline_frames_dropped_total",
       "Frames dropped at dispatch (drain requested)."},
      {"dnh_pipeline_records_dispatched_total",
       "Flow-export records fanned out to shard workers."},
      {"dnh_pipeline_routes", "Distinct flow keys routed to shards."},
      {"dnh_pipeline_stalls_total", "Watchdog stall declarations."},
      {"dnh_pipeline_windows_merged_total",
       "Analysis windows merged in sequence order."},
      {"dnh_resolver_cache_size", "Client-resolution cache entries."},
      {"dnh_resolver_clients", "Distinct clients with resolved names."},
      {"dnh_shard_queue_depth", "Sampled shard ring occupancy."},
      {"dnh_shard_queue_depth_samples", "Shard ring occupancy samples."},
      {"dnh_spill_bytes", "Bytes appended to spill segments."},
      {"dnh_spill_records_total", "Windows appended to spill segments."},
      {"dnh_stage_analytics_ns", "Analytics command latency."},
      {"dnh_stage_decode_ns", "Frame decode latency (sampled)."},
      {"dnh_stage_dispatch_ns", "Dispatch fan-out latency (sampled)."},
      {"dnh_stage_dns_parse_ns", "DNS parse latency (sampled)."},
      {"dnh_stage_merge_ns", "Window merge latency."},
      {"dnh_stage_pcap_read_ns", "Capture read latency (sampled)."},
      {"dnh_stage_shard_sniff_ns", "Per-window shard sniff latency."},
      {"dnh_tcp_dns_buffer_evictions_total",
       "TCP DNS reassembly buffers evicted by the cap."},
      {"dnh_tcp_dns_buffers", "TCP DNS reassembly buffers live."},
      {"dnh_tcp_dns_overflows_total",
       "TCP DNS streams dropped for exceeding the buffer limit."},
      {"dnh_timestamp_regressions_total",
       "Frames whose capture timestamp stepped backwards."},
  };
  for (const auto& [name, help] : kHelp)
    if (name == base) return help;
  return "DN-Hunter metric.";
}

}  // namespace

std::string to_json_line(const Snapshot& snap) {
  std::string out = "{\"ts_ms\":";
  append_i64(out, snap.wall_unix_ms);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_u64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_i64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    append_u64(out, hist.count);
    out += ",\"sum\":";
    append_u64(out, hist.sum);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i) out += ',';
      out += '[';
      append_u64(out, hist.buckets[i].upper);
      out += ',';
      append_u64(out, hist.buckets[i].count);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::string labels;
  // HELP+TYPE lines are emitted once per base name; the maps are sorted,
  // so all labeled series of one base are adjacent.
  std::string last_typed;
  const auto type_line = [&](const std::string& base, const char* type) {
    if (base == last_typed) return;
    last_typed = base;
    out += "# HELP ";
    out += base;
    out += ' ';
    append_escaped(out, help_for(base), /*escape_quotes=*/false);
    out += "\n# TYPE ";
    out += base;
    out += ' ';
    out += type;
    out += '\n';
  };

  for (const auto& [name, value] : snap.counters) {
    const std::string base = split_labels(name, labels);
    type_line(base, "counter");
    out += base;
    if (!labels.empty()) out += '{' + quote_labels(labels) + '}';
    out += ' ';
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string base = split_labels(name, labels);
    type_line(base, "gauge");
    out += base;
    if (!labels.empty()) out += '{' + quote_labels(labels) + '}';
    out += ' ';
    append_i64(out, value);
    out += '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string base = split_labels(name, labels);
    type_line(base, "histogram");
    const std::string quoted = quote_labels(labels);
    const std::string prefix = quoted.empty() ? "" : quoted + ",";
    std::uint64_t cumulative = 0;
    for (const auto& bucket : hist.buckets) {
      cumulative += bucket.count;
      out += base + "_bucket{" + prefix + "le=\"";
      append_u64(out, bucket.upper);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += base + "_bucket{" + prefix + "le=\"+Inf\"} ";
    append_u64(out, hist.count);
    out += '\n';
    out += base + "_sum";
    if (!quoted.empty()) out += '{' + quoted + '}';
    out += ' ';
    append_u64(out, hist.sum);
    out += '\n';
    out += base + "_count";
    if (!quoted.empty()) out += '{' + quoted + '}';
    out += ' ';
    append_u64(out, hist.count);
    out += '\n';
  }
  return out;
}

std::string format_ns(double ns) {
  char buffer[32];
  if (ns < 1e3)
    std::snprintf(buffer, sizeof buffer, "%.0fns", ns);
  else if (ns < 1e6)
    std::snprintf(buffer, sizeof buffer, "%.1fus", ns / 1e3);
  else if (ns < 1e9)
    std::snprintf(buffer, sizeof buffer, "%.1fms", ns / 1e6);
  else
    std::snprintf(buffer, sizeof buffer, "%.2fs", ns / 1e9);
  return buffer;
}

std::string human_summary(const Snapshot& snap) {
  std::string out;

  // Stage latency breakdown: every `dnh_stage_*_ns` histogram, with its
  // share of the total instrumented time. Sampled stages' totals cover
  // the sampled spans only — shares compare like with like, not absolute
  // wall time (see docs/observability.md).
  double total_stage_ns = 0;
  for (const auto& [name, hist] : snap.histograms) {
    if (name.rfind("dnh_stage_", 0) == 0)
      total_stage_ns += static_cast<double>(hist.sum);
  }
  if (total_stage_ns > 0) {
    out += "stage latency (sampled spans):\n";
    util::TextTable table{
        {"stage", "spans", "p50", "p90", "p99", "total", "share"}};
    for (const auto& [name, hist] : snap.histograms) {
      if (name.rfind("dnh_stage_", 0) != 0 || hist.count == 0) continue;
      table.add_row(
          {name, util::with_commas(hist.count),
           format_ns(hist.quantile(0.5)), format_ns(hist.quantile(0.9)),
           format_ns(hist.quantile(0.99)),
           format_ns(static_cast<double>(hist.sum)),
           util::percent(static_cast<double>(hist.sum) / total_stage_ns)});
    }
    out += table.render();
  }

  bool any_counter = false;
  for (const auto& [name, value] : snap.counters) any_counter |= value != 0;
  if (any_counter) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      if (value == 0) continue;
      out += "  " + name + " = " + util::with_commas(value) + "\n";
    }
  }
  bool any_gauge = false;
  for (const auto& [name, value] : snap.gauges) any_gauge |= value != 0;
  if (any_gauge) {
    out += "gauges:\n";
    for (const auto& [name, value] : snap.gauges) {
      if (value == 0) continue;
      out += "  " + name + " = " +
             util::with_commas(static_cast<std::uint64_t>(
                 value < 0 ? -value : value));
      if (value < 0) out += " (negative)";
      out += "\n";
    }
  }
  const auto other = snap.histograms;
  bool any_other = false;
  for (const auto& [name, hist] : other)
    any_other |= name.rfind("dnh_stage_", 0) != 0 && hist.count != 0;
  if (any_other) {
    out += "distributions:\n";
    for (const auto& [name, hist] : other) {
      if (name.rfind("dnh_stage_", 0) == 0 || hist.count == 0) continue;
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %s: n=%llu mean=%.1f p50=%.0f p99=%.0f max<=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(hist.count), hist.mean(),
                    hist.quantile(0.5), hist.quantile(0.99),
                    static_cast<unsigned long long>(
                        hist.buckets.empty() ? 0 : hist.buckets.back().upper));
      out += line;
    }
  }
  if (out.empty()) out = "no metrics recorded\n";
  return out;
}

struct JsonlExporter::Impl {
  Registry& registry;
  Options options;
  /// Opened by start() before the thread exists, closed by stop() after
  /// the join; while the thread runs, written only via write_line() with
  /// `mu` held. `thread`/`started` are caller-thread-only.
  std::FILE* file = nullptr;
  std::thread thread;
  util::Mutex mu;
  util::CondVar cv;
  bool stopping DNH_GUARDED_BY(mu) = false;
  bool started = false;
  std::atomic<std::uint64_t> lines{0};

  explicit Impl(Registry& r, Options o)
      : registry{r}, options{std::move(o)} {}

  void write_line() DNH_REQUIRES(mu) {
    const std::string line = to_json_line(registry.snapshot());
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
    std::fflush(file);
    lines.fetch_add(1, std::memory_order_relaxed);
  }

  void loop() {
    const auto interval = std::chrono::microseconds(
        std::max<std::int64_t>(options.interval.total_micros(), 1000));
    util::MutexLock lock{mu};
    while (!stopping) {
      // Unconditional timed wait + guarded re-check (no predicate lambda:
      // the annotated form keeps every `stopping` read visibly under mu).
      // A spurious wake before the timeout just skips one line.
      if (cv.wait_for(lock, interval) == std::cv_status::timeout &&
          !stopping) {
        write_line();  // mu held: serializes with the final stop() line
      }
    }
  }
};

JsonlExporter::JsonlExporter(Registry& registry, Options options)
    : impl_{std::make_unique<Impl>(registry, std::move(options))} {}

JsonlExporter::~JsonlExporter() { stop(); }

bool JsonlExporter::start() {
  if (impl_->started) return true;
  impl_->file = std::fopen(impl_->options.path.c_str(), "w");
  if (!impl_->file) return false;
  impl_->started = true;
  {
    util::MutexLock lock{impl_->mu};
    impl_->write_line();  // t=0 baseline line
  }
  impl_->thread = std::thread{[this] { impl_->loop(); }};
  return true;
}

void JsonlExporter::stop() {
  if (!impl_->started) return;
  {
    util::MutexLock lock{impl_->mu};
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  {
    util::MutexLock lock{impl_->mu};
    impl_->write_line();  // final state, after owners published
    impl_->stopping = false;
  }
  std::fclose(impl_->file);
  impl_->file = nullptr;
  impl_->started = false;
}

std::uint64_t JsonlExporter::lines_written() const noexcept {
  return impl_->lines.load(std::memory_order_relaxed);
}

}  // namespace dnh::obs

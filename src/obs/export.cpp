#include "obs/export.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace dnh::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(v));
  out += buffer;
}

void append_i64(std::string& out, std::int64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(v));
  out += buffer;
}

/// Splits the internal `base{k=v,...}` name syntax. Returns the base;
/// `labels` gets the raw inside of the braces ("" when unlabeled).
std::string split_labels(const std::string& name, std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    labels.clear();
    return name;
  }
  labels = name.substr(brace + 1, name.size() - brace - 2);
  return name.substr(0, brace);
}

/// `k=v,k2=v2` -> `k="v",k2="v2"` (values we emit never contain quotes).
std::string quote_labels(const std::string& labels) {
  std::string out;
  for (const auto pair : util::split(labels, ',')) {
    const auto eq = pair.find('=');
    if (!out.empty()) out += ',';
    if (eq == std::string_view::npos) {
      out += pair;
      continue;
    }
    out += pair.substr(0, eq);
    out += "=\"";
    out += pair.substr(eq + 1);
    out += '"';
  }
  return out;
}

}  // namespace

std::string to_json_line(const Snapshot& snap) {
  std::string out = "{\"ts_ms\":";
  append_i64(out, snap.wall_unix_ms);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_u64(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_i64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    append_u64(out, hist.count);
    out += ",\"sum\":";
    append_u64(out, hist.sum);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i) out += ',';
      out += '[';
      append_u64(out, hist.buckets[i].upper);
      out += ',';
      append_u64(out, hist.buckets[i].count);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  std::string labels;
  // TYPE lines are emitted once per base name; the maps are sorted, so
  // all labeled series of one base are adjacent.
  std::string last_typed;
  const auto type_line = [&](const std::string& base, const char* type) {
    if (base == last_typed) return;
    last_typed = base;
    out += "# TYPE ";
    out += base;
    out += ' ';
    out += type;
    out += '\n';
  };

  for (const auto& [name, value] : snap.counters) {
    const std::string base = split_labels(name, labels);
    type_line(base, "counter");
    out += base;
    if (!labels.empty()) out += '{' + quote_labels(labels) + '}';
    out += ' ';
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string base = split_labels(name, labels);
    type_line(base, "gauge");
    out += base;
    if (!labels.empty()) out += '{' + quote_labels(labels) + '}';
    out += ' ';
    append_i64(out, value);
    out += '\n';
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string base = split_labels(name, labels);
    type_line(base, "histogram");
    const std::string quoted = quote_labels(labels);
    const std::string prefix = quoted.empty() ? "" : quoted + ",";
    std::uint64_t cumulative = 0;
    for (const auto& bucket : hist.buckets) {
      cumulative += bucket.count;
      out += base + "_bucket{" + prefix + "le=\"";
      append_u64(out, bucket.upper);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += base + "_bucket{" + prefix + "le=\"+Inf\"} ";
    append_u64(out, hist.count);
    out += '\n';
    out += base + "_sum";
    if (!quoted.empty()) out += '{' + quoted + '}';
    out += ' ';
    append_u64(out, hist.sum);
    out += '\n';
    out += base + "_count";
    if (!quoted.empty()) out += '{' + quoted + '}';
    out += ' ';
    append_u64(out, hist.count);
    out += '\n';
  }
  return out;
}

std::string format_ns(double ns) {
  char buffer[32];
  if (ns < 1e3)
    std::snprintf(buffer, sizeof buffer, "%.0fns", ns);
  else if (ns < 1e6)
    std::snprintf(buffer, sizeof buffer, "%.1fus", ns / 1e3);
  else if (ns < 1e9)
    std::snprintf(buffer, sizeof buffer, "%.1fms", ns / 1e6);
  else
    std::snprintf(buffer, sizeof buffer, "%.2fs", ns / 1e9);
  return buffer;
}

std::string human_summary(const Snapshot& snap) {
  std::string out;

  // Stage latency breakdown: every `dnh_stage_*_ns` histogram, with its
  // share of the total instrumented time. Sampled stages' totals cover
  // the sampled spans only — shares compare like with like, not absolute
  // wall time (see docs/observability.md).
  double total_stage_ns = 0;
  for (const auto& [name, hist] : snap.histograms) {
    if (name.rfind("dnh_stage_", 0) == 0)
      total_stage_ns += static_cast<double>(hist.sum);
  }
  if (total_stage_ns > 0) {
    out += "stage latency (sampled spans):\n";
    util::TextTable table{
        {"stage", "spans", "p50", "p90", "p99", "total", "share"}};
    for (const auto& [name, hist] : snap.histograms) {
      if (name.rfind("dnh_stage_", 0) != 0 || hist.count == 0) continue;
      table.add_row(
          {name, util::with_commas(hist.count),
           format_ns(hist.quantile(0.5)), format_ns(hist.quantile(0.9)),
           format_ns(hist.quantile(0.99)),
           format_ns(static_cast<double>(hist.sum)),
           util::percent(static_cast<double>(hist.sum) / total_stage_ns)});
    }
    out += table.render();
  }

  bool any_counter = false;
  for (const auto& [name, value] : snap.counters) any_counter |= value != 0;
  if (any_counter) {
    out += "counters:\n";
    for (const auto& [name, value] : snap.counters) {
      if (value == 0) continue;
      out += "  " + name + " = " + util::with_commas(value) + "\n";
    }
  }
  bool any_gauge = false;
  for (const auto& [name, value] : snap.gauges) any_gauge |= value != 0;
  if (any_gauge) {
    out += "gauges:\n";
    for (const auto& [name, value] : snap.gauges) {
      if (value == 0) continue;
      out += "  " + name + " = " +
             util::with_commas(static_cast<std::uint64_t>(
                 value < 0 ? -value : value));
      if (value < 0) out += " (negative)";
      out += "\n";
    }
  }
  const auto other = snap.histograms;
  bool any_other = false;
  for (const auto& [name, hist] : other)
    any_other |= name.rfind("dnh_stage_", 0) != 0 && hist.count != 0;
  if (any_other) {
    out += "distributions:\n";
    for (const auto& [name, hist] : other) {
      if (name.rfind("dnh_stage_", 0) == 0 || hist.count == 0) continue;
      char line[160];
      std::snprintf(line, sizeof line,
                    "  %s: n=%llu mean=%.1f p50=%.0f p99=%.0f max<=%llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(hist.count), hist.mean(),
                    hist.quantile(0.5), hist.quantile(0.99),
                    static_cast<unsigned long long>(
                        hist.buckets.empty() ? 0 : hist.buckets.back().upper));
      out += line;
    }
  }
  if (out.empty()) out = "no metrics recorded\n";
  return out;
}

struct JsonlExporter::Impl {
  Registry& registry;
  Options options;
  /// Opened by start() before the thread exists, closed by stop() after
  /// the join; while the thread runs, written only via write_line() with
  /// `mu` held. `thread`/`started` are caller-thread-only.
  std::FILE* file = nullptr;
  std::thread thread;
  util::Mutex mu;
  util::CondVar cv;
  bool stopping DNH_GUARDED_BY(mu) = false;
  bool started = false;
  std::atomic<std::uint64_t> lines{0};

  explicit Impl(Registry& r, Options o)
      : registry{r}, options{std::move(o)} {}

  void write_line() DNH_REQUIRES(mu) {
    const std::string line = to_json_line(registry.snapshot());
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
    std::fflush(file);
    lines.fetch_add(1, std::memory_order_relaxed);
  }

  void loop() {
    const auto interval = std::chrono::microseconds(
        std::max<std::int64_t>(options.interval.total_micros(), 1000));
    util::MutexLock lock{mu};
    while (!stopping) {
      // Unconditional timed wait + guarded re-check (no predicate lambda:
      // the annotated form keeps every `stopping` read visibly under mu).
      // A spurious wake before the timeout just skips one line.
      if (cv.wait_for(lock, interval) == std::cv_status::timeout &&
          !stopping) {
        write_line();  // mu held: serializes with the final stop() line
      }
    }
  }
};

JsonlExporter::JsonlExporter(Registry& registry, Options options)
    : impl_{std::make_unique<Impl>(registry, std::move(options))} {}

JsonlExporter::~JsonlExporter() { stop(); }

bool JsonlExporter::start() {
  if (impl_->started) return true;
  impl_->file = std::fopen(impl_->options.path.c_str(), "w");
  if (!impl_->file) return false;
  impl_->started = true;
  {
    util::MutexLock lock{impl_->mu};
    impl_->write_line();  // t=0 baseline line
  }
  impl_->thread = std::thread{[this] { impl_->loop(); }};
  return true;
}

void JsonlExporter::stop() {
  if (!impl_->started) return;
  {
    util::MutexLock lock{impl_->mu};
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  {
    util::MutexLock lock{impl_->mu};
    impl_->write_line();  // final state, after owners published
    impl_->stopping = false;
  }
  std::fclose(impl_->file);
  impl_->file = nullptr;
  impl_->started = false;
}

std::uint64_t JsonlExporter::lines_written() const noexcept {
  return impl_->lines.load(std::memory_order_relaxed);
}

}  // namespace dnh::obs

#include "obs/metrics.hpp"

#include <chrono>
#include <utility>

#include "util/mutex.hpp"

namespace dnh::obs {

namespace detail {

// One process-wide mutex serializes every cell-membership operation:
// lazy registration, the flush-on-thread-exit, CounterState teardown
// and reader sums. All of these are cold paths (the hot path touches
// only its own thread's cell, lock-free), and a single mutex makes the
// teardown story order-independent: a test-local Registry can die while
// threads still hold cells, and threads can exit while the registry
// lives. Leaked so late TLS destructors can always lock it.
util::Mutex& cells_mu() {
  static util::Mutex* mu = new util::Mutex;
  return *mu;
}

namespace {

// Per-thread table of counter cells, indexed by CounterState::id. The
// destructor is the flush-on-thread-exit path: each cell's total moves
// into its counter's `retired` sum and the cell leaves the live list, so
// short-lived worker threads never leak counts or memory. A cell whose
// registry died first was orphaned (owner == nullptr) by ~CounterState
// and is skipped — its counts die with the registry that defined them.
struct ThreadCells {
  struct Slot {
    std::unique_ptr<Cell> cell;
  };
  std::vector<Slot> slots;

  ~ThreadCells() {
    util::MutexLock lock{cells_mu()};
    for (Slot& slot : slots) {
      Cell* cell = slot.cell.get();
      if (!cell || !cell->owner) continue;
      cell->owner->retired.fetch_add(
          cell->value.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      auto& cells = cell->owner->cells;
      for (auto it = cells.begin(); it != cells.end(); ++it) {
        if (*it == cell) {
          cells.erase(it);
          break;
        }
      }
    }
  }
};

thread_local ThreadCells t_cells;

// Counter ids index the per-thread slot table, so they must be unique
// across EVERY Registry instance (tests build private registries), not
// just within one.
std::atomic<std::size_t> g_next_counter_id{0};

}  // namespace

std::size_t next_counter_id() {
  return g_next_counter_id.fetch_add(1, std::memory_order_relaxed);
}

Cell* register_cell(CounterState* state) {
  if (t_cells.slots.size() <= state->id) t_cells.slots.resize(state->id + 1);
  ThreadCells::Slot& slot = t_cells.slots[state->id];
  slot.cell = std::make_unique<Cell>();
  util::MutexLock lock{cells_mu()};
  slot.cell->owner = state;
  state->cells.push_back(slot.cell.get());
  return slot.cell.get();
}

CounterState::~CounterState() {
  util::MutexLock lock{cells_mu()};
  for (Cell* cell : cells) cell->owner = nullptr;
}

std::uint64_t CounterState::value() const {
  util::MutexLock lock{cells_mu()};
  std::uint64_t total = retired.load(std::memory_order_relaxed);
  for (const Cell* cell : cells)
    total += cell->value.load(std::memory_order_relaxed);
  return total;
}

}  // namespace detail

void Counter::add(std::uint64_t n) const noexcept {
  if (!state_) return;
  // Hot path: one thread_local vector index + one relaxed RMW on a cell
  // no other thread writes.
  auto& slots = detail::t_cells.slots;
  detail::Cell* cell =
      state_->id < slots.size() ? slots[state_->id].cell.get() : nullptr;
  if (!cell) cell = detail::register_cell(state_);
  cell->value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  return state_ ? state_->value() : 0;
}

void Histogram::observe(std::uint64_t v) const noexcept {
  if (!state_) return;
  state_->buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  state_->sum.fetch_add(v, std::memory_order_relaxed);
  state_->count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  return state_ ? state_->count.load(std::memory_order_relaxed) : 0;
}

std::uint64_t Histogram::sum() const noexcept {
  return state_ ? state_->sum.load(std::memory_order_relaxed) : 0;
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (const Bucket& bucket : buckets) {
    seen += bucket.count;
    if (static_cast<double>(seen) >= target)
      return static_cast<double>(bucket.upper);
  }
  return static_cast<double>(buckets.back().upper);
}

Registry& Registry::global() {
  // Leaked deliberately: TLS flush-on-exit destructors and late handle
  // reads must outlive every static destructor.
  static Registry* instance = new Registry;
  return *instance;
}

Registry::Registry()
    : samplers_{std::make_shared<detail::SamplerSet>()} {}

Registry::~Registry() {
  // Drop the sampler functions now: they may capture state owned by
  // whoever owns this registry, and must never run past its death. The
  // SamplerSet itself lives on while any handle still references it, so
  // late SamplerHandle::reset() calls find live (empty) shared state
  // instead of a dangling Registry pointer.
  util::MutexLock lock{samplers_->mu};
  samplers_->fns.clear();
}

Counter Registry::counter(std::string_view name) {
  util::MutexLock lock{mu_};
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    auto state = std::make_unique<detail::CounterState>();
    state->name = std::string{name};
    state->id = detail::next_counter_id();
    it = counters_.emplace(state->name, std::move(state)).first;
  }
  return Counter{it->second.get()};
}

Gauge Registry::gauge(std::string_view name) {
  util::MutexLock lock{mu_};
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    auto state = std::make_unique<detail::GaugeState>();
    state->name = std::string{name};
    it = gauges_.emplace(state->name, std::move(state)).first;
  }
  return Gauge{it->second.get()};
}

Histogram Registry::histogram(std::string_view name) {
  util::MutexLock lock{mu_};
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    auto state = std::make_unique<detail::HistogramState>();
    state->name = std::string{name};
    it = histograms_.emplace(state->name, std::move(state)).first;
  }
  return Histogram{it->second.get()};
}

Registry::SamplerHandle& Registry::SamplerHandle::operator=(
    SamplerHandle&& o) noexcept {
  if (this != &o) {
    reset();
    set_ = std::exchange(o.set_, nullptr);
    id_ = std::exchange(o.id_, 0);
  }
  return *this;
}

void Registry::SamplerHandle::reset() {
  if (!set_) return;
  {
    util::MutexLock lock{set_->mu};
    set_->fns.erase(id_);
  }
  // Wait out any snapshot currently running the (old copy of the) sampler
  // list: once we hold run_mu, no in-flight call can still be touching
  // the state the sampler captured. This is what lets an owner destroy
  // sampled state right after reset(). Works identically whether the
  // registry is alive or already destroyed (the set is shared state).
  // Acquire-then-release only: run_mu must be unlocked *before* the
  // shared_ptr drops, because releasing the last reference destroys the
  // set — and the mutex a still-held guard would then try to unlock.
  { util::MutexLock run_lock{set_->run_mu}; }
  set_.reset();
  id_ = 0;
}

Registry::SamplerHandle Registry::add_sampler(std::function<void()> fn) {
  SamplerHandle handle;
  util::MutexLock lock{samplers_->mu};
  handle.set_ = samplers_;
  handle.id_ = samplers_->next_id++;
  samplers_->fns.emplace(handle.id_, std::move(fn));
  return handle;
}

Snapshot Registry::snapshot() {
  // Copy the sampler list out so samplers can touch the registry (e.g.
  // lazily resolve a handle) without deadlocking; hold run_mu across the
  // calls so SamplerHandle::reset() can wait out an in-flight pass before
  // its owner tears down sampled state.
  util::MutexLock run_lock{samplers_->run_mu};
  std::vector<std::function<void()>> samplers;
  {
    util::MutexLock lock{samplers_->mu};
    samplers.reserve(samplers_->fns.size());
    for (const auto& [id, fn] : samplers_->fns) samplers.push_back(fn);
  }
  for (const auto& fn : samplers) fn();
  return collect();
}

Snapshot Registry::collect() const {
  Snapshot snap;
  snap.wall_unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  util::MutexLock lock{mu_};
  for (const auto& [name, state] : counters_)
    snap.counters.emplace(name, state->value());
  for (const auto& [name, state] : gauges_)
    snap.gauges.emplace(name, state->value.load(std::memory_order_relaxed));
  for (const auto& [name, state] : histograms_) {
    HistogramSnapshot hist;
    hist.count = state->count.load(std::memory_order_relaxed);
    hist.sum = state->sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n =
          state->buckets[i].load(std::memory_order_relaxed);
      if (n != 0)
        hist.buckets.push_back({Histogram::bucket_upper(i), n});
    }
    snap.histograms.emplace(name, std::move(hist));
  }
  return snap;
}

void Registry::reset() {
  util::MutexLock lock{mu_};
  {
    util::MutexLock cells_lock{detail::cells_mu()};
    for (const auto& [name, state] : counters_) {
      state->retired.store(0, std::memory_order_relaxed);
      for (detail::Cell* cell : state->cells)
        cell->value.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& [name, state] : gauges_)
    state->value.store(0, std::memory_order_relaxed);
  for (const auto& [name, state] : histograms_) {
    state->count.store(0, std::memory_order_relaxed);
    state->sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : state->buckets)
      bucket.store(0, std::memory_order_relaxed);
  }
}

}  // namespace dnh::obs

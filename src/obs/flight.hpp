// Always-on flight recorder: fixed-capacity per-thread rings of compact
// binary trace events, recording what happened — in what order, to which
// window — across every pipeline thread (docs/observability.md, "Flight
// recorder & tracing").
//
// The metrics layer (metrics.hpp) answers "how much / how fast"; this
// layer answers "what happened to window W" when a watchdog stall or a
// crash leaves no other history. Recording must therefore be cheap enough
// to leave on unconditionally: one ring slot write per event (four
// relaxed atomic word stores plus a release head bump), no locks, no
// allocation, no branches beyond an enabled check. Each thread owns its
// ring exclusively for writing; dump/excerpt readers tolerate concurrent
// writers by detecting and discarding slots the writer may have lapped.
//
// Every event is 32 bytes: steady timestamp (ns since the recorder
// epoch), a free u64 argument, the window sequence number (the causal
// WindowTraceId stamped at dispatch and carried through seal, spill,
// merge, and emit), and a packed word holding stage, kind, and shard.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace dnh::obs {

/// Which pipeline role recorded the event. Stages mirror the heartbeat
/// board plus the non-heartbeat roles (source reader, CLI, watchdog).
enum class TraceStage : std::uint8_t {
  kCli = 0,    ///< tool/front-end thread (argument handling, dump paths)
  kSource,     ///< capture/flow-source reader
  kDispatch,   ///< dispatcher (frame routing + window rotation)
  kShard,      ///< per-shard sniffer worker
  kSpill,      ///< spill segment writer (runs on the sealing worker)
  kMerge,      ///< merge thread
  kExport,     ///< flow-export datagram reader
  kWatchdog,   ///< supervisor watchdog
};
inline constexpr std::size_t kTraceStageCount = 8;

/// Catalog name ("dispatch", "shard", ...). Stable: dump formats and the
/// docs/observability.md catalog use these strings.
std::string_view trace_stage_name(TraceStage stage) noexcept;

/// Event kinds. Every kind recorded anywhere in the tree must appear in
/// the docs/observability.md trace-event catalog — dnh-lint's
/// trace-catalog rule enforces the pairing, exactly like metric names.
enum class TraceKind : std::uint8_t {
  kThreadStart = 0,    ///< a recorded thread entered its loop
  kWindowDispatched,   ///< dispatcher broadcast a rotation (window sealed soon)
  kWindowSealed,       ///< a shard canonicalized its slice of the window
  kWindowSpilled,      ///< the sealed slice became durable in a segment
  kWindowJournaled,    ///< merge journaled the seal into the manifest
  kMergeIngested,      ///< merge took a shard window off the inbox
  kWindowEmitted,      ///< merged window delivered to the sink
  kWindowRecovered,    ///< a spilled window was replayed during --resume
  kFrameBatch,         ///< dispatcher progress marker (every ~512 frames/shard)
  kSniffProgress,      ///< sniffer progress marker (every 4096 frames)
  kBackpressureWait,   ///< dispatcher blocked on a full shard ring
  kSourceOpen,         ///< a capture file / export stream was opened
  kSourceDone,         ///< a capture file / export stream was exhausted
  kExportDatagram,     ///< flow-export datagram consumed
  kDrainRequested,     ///< graceful-drain flag observed by the dispatcher
  kStallDeclared,      ///< watchdog declared a pipeline stall
  kStallInjected,      ///< faultinject parked this thread on purpose
  kPipelineFinish,     ///< dispatcher entered the shutdown/merge-join path
};
inline constexpr std::size_t kTraceKindCount = 18;

/// Catalog name ("thread-start", "window-sealed", ...).
std::string_view trace_kind_name(TraceKind kind) noexcept;

/// Shard value for events not tied to any shard.
inline constexpr unsigned kNoShard = 0xff;
/// Window sequence for events not tied to any window.
inline constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

/// Decoded event, as returned by snapshots and dump readers. The in-ring
/// representation is four u64 words; see TraceRing.
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< steady ns since the recorder's epoch
  std::uint64_t arg = 0;    ///< kind-specific payload (bytes, counts, ...)
  std::uint64_t seq = kNoSeq;  ///< window sequence (WindowTraceId)
  TraceStage stage = TraceStage::kCli;
  TraceKind kind = TraceKind::kThreadStart;
  unsigned shard = kNoShard;

  /// Packs stage/kind/shard into the ring's fourth word.
  static std::uint64_t pack(TraceStage stage, TraceKind kind,
                            unsigned shard) noexcept {
    return static_cast<std::uint64_t>(static_cast<std::uint8_t>(stage)) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 8) |
           (static_cast<std::uint64_t>(shard & 0xff) << 16);
  }
  static TraceStage unpack_stage(std::uint64_t word) noexcept {
    return static_cast<TraceStage>(word & 0xff);
  }
  static TraceKind unpack_kind(std::uint64_t word) noexcept {
    return static_cast<TraceKind>((word >> 8) & 0xff);
  }
  static unsigned unpack_shard(std::uint64_t word) noexcept {
    return static_cast<unsigned>((word >> 16) & 0xff);
  }
};

/// One thread's fixed-capacity event ring. Written by exactly one thread;
/// read concurrently by dump/excerpt code.
///
/// Concurrency contract: slots are arrays of relaxed atomics, so a reader
/// racing the writer never tears a word and is race-free under TSan. The
/// writer publishes an event by storing its four words relaxed and then
/// bumping `head` with release; a reader acquires `head`, walks the live
/// range, re-acquires `head`, and discards any slot the writer could have
/// started overwriting in between (index + capacity <= new head). What a
/// reader keeps is therefore always a fully-published, untorn event.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 8.
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Owner-thread only: records one event. Lock-free, allocation-free.
  /// Seqlock-style write protocol: begin_ is bumped before the slot
  /// stores (ordered by the release fence), head_ after. A reader that
  /// observed any word of the new event is therefore guaranteed to also
  /// observe the begin_ bump and discard the slot as possibly torn.
  void record(std::uint64_t ts_ns, TraceStage stage, TraceKind kind,
              std::uint64_t seq, unsigned shard, std::uint64_t arg) noexcept {
    const std::uint64_t idx = head_.load(std::memory_order_relaxed);
    begin_.store(idx + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::atomic<std::uint64_t>* slot = &words_[(idx & mask_) * kWordsPerEvent];
    slot[0].store(ts_ns, std::memory_order_relaxed);
    slot[1].store(arg, std::memory_order_relaxed);
    slot[2].store(seq, std::memory_order_relaxed);
    slot[3].store(TraceEvent::pack(stage, kind, shard),
                  std::memory_order_relaxed);
    head_.store(idx + 1, std::memory_order_release);
  }

  /// Any thread: decodes the currently-live events, oldest first. Safe
  /// against the concurrently-writing owner; lapped slots are dropped.
  std::vector<TraceEvent> snapshot() const;

  std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Total events ever recorded (not the live count).
  std::uint64_t total() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Raw access for the async-signal-safe dump path (traceio.cpp): plain
  /// atomic loads only, no member functions that could allocate.
  const std::atomic<std::uint64_t>* words() const noexcept {
    return words_.get();
  }

  static constexpr std::size_t kWordsPerEvent = 4;
  static constexpr std::size_t kEventBytes = 32;

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  /// Index one past the newest event whose slot stores have *begun*.
  /// head_ <= begin_ always; they differ only while record() is between
  /// its begin_ bump and its head_ bump.
  std::atomic<std::uint64_t> begin_{0};
};

/// One registered thread's decoded trace.
struct ThreadTrace {
  std::uint32_t ring_id = 0;  ///< dense id, assigned at registration
  std::string label;          ///< "dispatch", "shard-3", "merge", ...
  std::uint64_t total = 0;    ///< events ever recorded by this thread
  std::vector<TraceEvent> events;  ///< live window, oldest first
};

/// Process-wide recorder: owns one TraceRing per thread that ever
/// recorded, registered lazily on first event and kept after thread exit
/// so post-mortem dumps still see every thread's history.
class FlightRecorder {
 public:
  /// Default per-thread ring capacity (events). 4096 × 32 B = 128 KiB per
  /// thread — hours of window-lifecycle history at production rotation
  /// rates, minutes of dispatcher progress markers.
  static constexpr std::size_t kDefaultRingCapacity = 4096;
  /// Hard cap on registered threads (fixed table so the fatal-signal dump
  /// can walk it without locks).
  static constexpr std::size_t kMaxRings = 256;

  explicit FlightRecorder(std::size_t ring_capacity = kDefaultRingCapacity);

  /// The process-wide instance (leaked; usable during static teardown).
  static FlightRecorder& global();

  /// Hot path: records one event into the calling thread's ring,
  /// registering the ring on first use. noexcept and allocation-free
  /// after registration; a no-op while disabled or if kMaxRings threads
  /// already registered.
  void record(TraceStage stage, TraceKind kind, std::uint64_t seq = kNoSeq,
              unsigned shard = kNoShard, std::uint64_t arg = 0) noexcept;

  /// Names the calling thread's ring in dumps ("shard-2", "merge", ...).
  /// Registers the ring if needed. Labels longer than 31 bytes truncate.
  void set_thread_label(std::string_view label);

  /// Recording gate (dump paths stay live while disabled). Used by the
  /// traced-vs-untraced bench A/B and by the fatal-signal dump to quiesce
  /// writers.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Steady-clock ns since this recorder's construction epoch.
  std::uint64_t now_ns() const noexcept;

  /// Decodes every registered ring (including rings of exited threads).
  std::vector<ThreadTrace> snapshot() const DNH_EXCLUDES(mu_);

  /// Human-readable "last `per_stage` events per stage" excerpt for
  /// StallDiagnostic / crash reports.
  std::string excerpt(std::size_t per_stage) const DNH_EXCLUDES(mu_);

  /// Lock-free view of one registered ring for the async-signal-safe dump
  /// path. `label` is a NUL-terminated copy taken at raw_rings() time.
  struct RawRing {
    const TraceRing* ring = nullptr;
    char label[32] = {0};
    std::uint32_t ring_id = 0;
  };
  /// Fills `out` with up to `max` raw ring views; returns the count.
  /// Async-signal-safe: atomic loads over an append-only table.
  std::size_t raw_rings(RawRing* out, std::size_t max) const noexcept;

  std::size_t ring_capacity() const noexcept { return ring_capacity_; }

 private:
  struct RingEntry {
    explicit RingEntry(std::size_t capacity) : ring{capacity} {}
    TraceRing ring;
    /// Relaxed atomic bytes: the owner thread stores its label, dump
    /// readers (including the signal path) copy it lock-free mid-write.
    std::atomic<char> label[32] = {};
    std::uint32_t ring_id = 0;
  };

  /// Returns the calling thread's entry, registering it on first use.
  /// nullptr when the table is full.
  RingEntry* entry_for_this_thread() DNH_EXCLUDES(mu_);

  const std::size_t ring_capacity_;
  std::atomic<bool> enabled_{true};
  std::chrono::steady_clock::time_point epoch_;

  mutable util::Mutex mu_;
  // Append-only: entries_[i] transitions nullptr -> valid exactly once
  // (store-release under mu_), and count_ only grows. Readers that load
  // count_ acquire may walk [0, count_) without the mutex — that is what
  // keeps raw_rings() signal-safe. Slots are never freed.
  std::unique_ptr<std::atomic<RingEntry*>[]> entries_;
  std::atomic<std::size_t> count_{0};
};

/// Convenience hot-path entry point: record into the global recorder.
inline void trace_event(TraceStage stage, TraceKind kind,
                        std::uint64_t seq = kNoSeq, unsigned shard = kNoShard,
                        std::uint64_t arg = 0) noexcept {
  FlightRecorder::global().record(stage, kind, seq, shard, arg);
}

}  // namespace dnh::obs

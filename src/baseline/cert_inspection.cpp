#include "baseline/cert_inspection.hpp"

#include "dns/domain.hpp"
#include "tls/handshake.hpp"
#include "util/strings.hpp"

namespace dnh::baseline {

std::string_view cert_outcome_name(CertOutcome o) noexcept {
  switch (o) {
    case CertOutcome::kEqualFqdn: return "Certificate equal FQDN";
    case CertOutcome::kGeneric: return "Generic certificate";
    case CertOutcome::kTotallyDifferent: return "Totally different certificate";
    case CertOutcome::kNoCertificate: return "No certificate";
  }
  return "?";
}

std::optional<tls::CertificateInfo> inspect_certificate(
    const flow::FlowRecord& flow) {
  const auto flight = tls::parse_server_flight(flow.head_s2c);
  if (!flight) return std::nullopt;
  return flight->leaf_info();
}

CertOutcome compare_names(const tls::CertificateInfo& info,
                          std::string_view fqdn) {
  // Exact equality of the CN or a SAN with the FQDN.
  for (const auto& name : info.all_names()) {
    if (util::iequals(name, fqdn)) return CertOutcome::kEqualFqdn;
  }
  // Generic: a wildcard match, or any name sharing the 2LD — e.g.
  // "*.google.com" for mail.google.com, or "www.google.com" presented for
  // docs.google.com. The operator learns the organization, not the service.
  const std::string_view fqdn_sld = dns::second_level_domain(fqdn);
  for (const auto& name : info.all_names()) {
    if (tls::wildcard_match(name, fqdn)) return CertOutcome::kGeneric;
    std::string_view pattern = name;
    if (pattern.substr(0, 2) == "*.") pattern.remove_prefix(2);
    if (util::iequals(dns::second_level_domain(pattern), fqdn_sld))
      return CertOutcome::kGeneric;
  }
  return CertOutcome::kTotallyDifferent;
}

CertOutcome compare_certificate(const flow::FlowRecord& flow,
                                std::string_view fqdn) {
  const auto info = inspect_certificate(flow);
  if (!info) return CertOutcome::kNoCertificate;
  return compare_names(*info, fqdn);
}

}  // namespace dnh::baseline

#include "baseline/reverse_dns.hpp"

#include "dns/domain.hpp"
#include "util/strings.hpp"

namespace dnh::baseline {

std::string_view reverse_outcome_name(ReverseLookupOutcome o) noexcept {
  switch (o) {
    case ReverseLookupOutcome::kSameFqdn: return "Same FQDN";
    case ReverseLookupOutcome::kSameSecondLevel: return "Same 2nd-level domain";
    case ReverseLookupOutcome::kTotallyDifferent: return "Totally different";
    case ReverseLookupOutcome::kNoAnswer: return "No-answer";
  }
  return "?";
}

void PtrDatabase::add(net::Ipv4Address address, std::string ptr_name) {
  records_[address] = util::to_lower(ptr_name);
}

std::optional<std::string_view> PtrDatabase::query(
    net::Ipv4Address address) const {
  const auto it = records_.find(address);
  if (it == records_.end()) return std::nullopt;
  return std::string_view{it->second};
}

ReverseLookupOutcome compare_reverse_lookup(
    const std::optional<std::string_view>& ptr_name, std::string_view fqdn) {
  if (!ptr_name || ptr_name->empty()) return ReverseLookupOutcome::kNoAnswer;
  if (util::iequals(*ptr_name, fqdn)) return ReverseLookupOutcome::kSameFqdn;
  if (util::iequals(dns::second_level_domain(*ptr_name),
                    dns::second_level_domain(fqdn)))
    return ReverseLookupOutcome::kSameSecondLevel;
  return ReverseLookupOutcome::kTotallyDifferent;
}

}  // namespace dnh::baseline

#include "baseline/dpi.hpp"

#include "dns/message.hpp"
#include "http/http.hpp"
#include "tls/handshake.hpp"

namespace dnh::baseline {
namespace {

constexpr std::string_view kBtHandshakePrefix = "\x13"
                                                "BitTorrent protocol";

std::string_view as_text(net::BytesView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

}  // namespace

bool looks_like_bittorrent(net::BytesView payload) noexcept {
  const auto text = as_text(payload);
  return text.size() >= kBtHandshakePrefix.size() &&
         text.substr(0, kBtHandshakePrefix.size()) == kBtHandshakePrefix;
}

bool looks_like_tracker_announce(net::BytesView payload) noexcept {
  const auto text = as_text(payload);
  return text.substr(0, 4) == "GET " &&
         text.find("/announce") != std::string_view::npos &&
         text.find("info_hash=") != std::string_view::npos;
}

flow::ProtocolClass classify(const flow::FlowRecord& flow) {
  if (flow.key.transport == flow::Transport::kUdp &&
      (flow.key.server_port == dns::kDnsPort))
    return flow::ProtocolClass::kDns;

  const net::BytesView c2s{flow.head_c2s};
  const net::BytesView s2c{flow.head_s2c};

  if (looks_like_bittorrent(c2s) || looks_like_bittorrent(s2c))
    return flow::ProtocolClass::kP2p;
  // Tracker announces are HTTP-framed but belong to the BitTorrent
  // ecosystem; the paper buckets them as P2P (its footnote 4: the few P2P
  // resolver hits "are related to BitTorrent tracker traffic mainly").
  if (looks_like_tracker_announce(c2s)) return flow::ProtocolClass::kP2p;
  if (http::looks_like_http_request(c2s)) return flow::ProtocolClass::kHttp;
  if (tls::looks_like_tls(c2s) || tls::looks_like_tls(s2c))
    return flow::ProtocolClass::kTls;

  if (c2s.empty() && s2c.empty()) {
    // No payload captured: fall back to ports.
    switch (flow.key.server_port) {
      case 80:
      case 8080:
        return flow::ProtocolClass::kHttp;
      case 443:
        return flow::ProtocolClass::kTls;
      default:
        return flow::ProtocolClass::kUnknown;
    }
  }
  return flow::ProtocolClass::kOther;
}

std::optional<std::string> dpi_label(const flow::FlowRecord& flow) {
  const net::BytesView c2s{flow.head_c2s};
  if (http::looks_like_http_request(c2s)) {
    const auto req = http::parse_request(c2s);
    if (req) return req->host();
    return std::nullopt;
  }
  if (tls::looks_like_tls(c2s)) {
    const auto hello = tls::parse_client_hello(c2s);
    if (hello && hello->sni) return hello->sni;
  }
  return std::nullopt;
}

}  // namespace dnh::baseline

// Active reverse-DNS (PTR) lookup baseline (paper Sec. 3.1.3, Table 3).
//
// The paper issues live PTR queries for 1,000 tagged server IPs and scores
// the answers against the sniffer's FQDNs. Offline, we model the PTR zone
// as a database the trace generator populates with the naming policies real
// operators use (CDN-internal rDNS names, missing PTR records, 2LD-matching
// names for self-hosted servers), then run the identical comparison.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "net/ip.hpp"

namespace dnh::baseline {

/// Table 3's rows.
enum class ReverseLookupOutcome {
  kSameFqdn,         ///< PTR name equals the sniffer's FQDN
  kSameSecondLevel,  ///< PTR shares only the 2nd-level domain
  kTotallyDifferent, ///< unrelated name (typical CDN rDNS)
  kNoAnswer,         ///< NXDOMAIN / no PTR record
};

std::string_view reverse_outcome_name(ReverseLookupOutcome o) noexcept;

/// The simulated PTR zone: serverIP -> designated rDNS name.
class PtrDatabase {
 public:
  void add(net::Ipv4Address address, std::string ptr_name);

  /// The PTR record for `address`, or nullopt (NXDOMAIN).
  std::optional<std::string_view> query(net::Ipv4Address address) const;

  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::unordered_map<net::Ipv4Address, std::string> records_;
};

/// Scores one reverse lookup against the FQDN DN-Hunter associated with
/// the same serverIP.
ReverseLookupOutcome compare_reverse_lookup(
    const std::optional<std::string_view>& ptr_name, std::string_view fqdn);

}  // namespace dnh::baseline

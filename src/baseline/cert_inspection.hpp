// TLS certificate-inspection baseline (paper Sec. 5.2.1, Table 4).
//
// The conventional augmentation of a DPI box for encrypted traffic: read
// the server Certificate from the TLS handshake and use its subject name
// as the flow label. The paper shows four outcome classes when comparing
// this against DN-Hunter's FQDN; this module reproduces the comparison.
#pragma once

#include <optional>
#include <string>

#include "flow/flow.hpp"
#include "tls/x509.hpp"

namespace dnh::baseline {

/// Table 4's rows.
enum class CertOutcome {
  kEqualFqdn,        ///< certificate name equals the FQDN exactly
  kGeneric,          ///< wildcard / 2LD-only match ("*.google.com")
  kTotallyDifferent, ///< names share nothing with the FQDN
  kNoCertificate,    ///< no certificate on the wire (e.g. resumed session)
};

std::string_view cert_outcome_name(CertOutcome o) noexcept;

/// Extracts the leaf-certificate names from a TLS flow's server payload;
/// nullopt when the flow carries no certificate.
std::optional<tls::CertificateInfo> inspect_certificate(
    const flow::FlowRecord& flow);

/// Classifies the certificate-vs-FQDN comparison for one flow labeled
/// `fqdn` by DN-Hunter.
CertOutcome compare_certificate(const flow::FlowRecord& flow,
                                std::string_view fqdn);

/// Classifies a certificate (already parsed) against `fqdn`.
CertOutcome compare_names(const tls::CertificateInfo& info,
                          std::string_view fqdn);

}  // namespace dnh::baseline

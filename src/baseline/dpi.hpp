// DPI-lite protocol classifier.
//
// Plays the role Tstat's DPI plays in the paper: a payload-signature
// classifier used (a) to bucket flows into HTTP / TLS / P2P for the hit-
// ratio evaluation (Tab. 2) and (b) as the conventional alternative that
// DN-Hunter is compared against. Signatures inspect only the first
// captured payload bytes of each direction.
#pragma once

#include <optional>
#include <string>

#include "flow/flow.hpp"

namespace dnh::baseline {

/// Classifies a reconstructed flow from its payload heads and ports.
flow::ProtocolClass classify(const flow::FlowRecord& flow);

/// The label a DPI box would attach to the flow, when the payload exposes
/// one: the HTTP Host header, or the TLS SNI. Encrypted flows without SNI
/// and opaque protocols yield nullopt — exactly the visibility gap the
/// paper describes.
std::optional<std::string> dpi_label(const flow::FlowRecord& flow);

/// True if the payload looks like a BitTorrent peer-wire handshake.
bool looks_like_bittorrent(net::BytesView payload) noexcept;

/// True if the payload is an HTTP tracker announce request.
bool looks_like_tracker_announce(net::BytesView payload) noexcept;

}  // namespace dnh::baseline
